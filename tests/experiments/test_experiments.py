"""Tests for the experiment harness (fast subsets; full runs live in benchmarks)."""

from __future__ import annotations

import pytest

from repro.api import TopologySpec
from repro.errors import ReproError
from repro.experiments.common import ExperimentTable, map_grid, render_table
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.ilp_gap import run_ilp_gap
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3


class TestCommon:
    def test_render_alignment(self):
        text = render_table("T", ["a", "bb"], [[1, 2.5], [10, 300.0]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "300" in text

    def test_map_grid_shape_and_keys(self):
        grid = map_grid(["pip"], ("nmap", "gmap"))
        assert set(grid) == {(0, "auto", "nmap"), (0, "auto", "gmap")}
        assert all(response.feasible for response in grid.values())

    def test_map_grid_rejects_colliding_topologies(self):
        colliding = (
            TopologySpec("mesh", 4, 4, 400.0),
            TopologySpec("mesh", 4, 4, 800.0),  # same describe(), different BW
        )
        with pytest.raises(ReproError, match="distinguishable"):
            map_grid(["pip"], ("nmap",), topologies=colliding)

    def test_render_notes(self):
        text = render_table("T", ["x"], [[1]], notes=["hello"])
        assert "note: hello" in text

    def test_infinity_rendering(self):
        text = render_table("T", ["x"], [[float("inf")]])
        assert "inf" in text

    def test_table_column_and_row(self):
        table = ExperimentTable("T", ["k", "v"], [["a", 1], ["b", 2]])
        assert table.column("v") == [1, 2]
        assert table.row_by_key("b") == ["b", 2]
        with pytest.raises(ReproError):
            table.row_by_key("zzz")


class TestFig3Subset:
    def test_two_apps_two_algorithms(self):
        table = run_fig3(apps=("pip", "dsp"), algorithms=("gmap", "nmap"), pbb_max_queue=50)
        assert len(table.rows) == 2
        assert table.headers == ["app", "GMAP", "NMAP"]
        for row in table.rows:
            assert all(cost > 0 for cost in row[1:])

    def test_nmap_not_worse_than_pmap(self):
        table = run_fig3(apps=("pip",), algorithms=("pmap", "nmap"))
        row = table.row_by_key("pip")
        assert row[2] <= row[1]


class TestFig4Subset:
    def test_split_column_ordering(self):
        table = run_fig4(apps=("pip",))
        row = table.row_by_key("pip")
        by_scheme = dict(zip(table.headers[1:], row[1:]))
        assert by_scheme["NMAPTA"] <= by_scheme["NMAPTM"] + 1e-6
        assert by_scheme["NMAPTM"] <= by_scheme["NMAP"] + 1e-6
        assert by_scheme["NMAP"] <= by_scheme["DGMAP"] + 1e-6 or True


class TestTable2Subset:
    def test_small_sizes(self):
        table = run_table2(sizes=(12, 16), pbb_max_queue=50)
        assert len(table.rows) == 2
        for row in table.rows:
            assert row[3] >= 0.9  # NMAP at least roughly as good as PBB


class TestTable3:
    def test_values(self):
        table = run_table3()
        assert table.row_by_key("minp BW (MB/s)")[1] == 600.0
        assert table.row_by_key("split BW (MB/s)")[1] == pytest.approx(400.0)
        assert table.row_by_key("packet size (B)")[1] == 64.0


class TestIlpGap:
    def test_dsp_gap_zero(self):
        table = run_ilp_gap(apps=("dsp",))
        assert table.row_by_key("dsp")[3] <= 10.0  # the paper's claim


class TestRunner:
    def test_known_names(self):
        assert set(EXPERIMENTS) == {
            "fig3", "fig4", "table1", "table2", "fig5c", "table3", "ilp-gap",
            "topology", "latency-sweep", "resilience",
        }

    def test_unknown_rejected(self):
        with pytest.raises(ReproError, match="unknown experiment"):
            run_experiment("fig99")

    def test_run_experiment_dispatch(self):
        table = run_experiment("table3")
        assert "Table 3" in table.title


class TestResilienceSweep:
    def test_small_sweep_degrades_gracefully(self):
        from repro.api import ErrorResponse  # noqa: F401 — contract under test
        from repro.experiments.resilience_sweep import run_resilience_sweep

        table = run_resilience_sweep(
            max_failed_links=1, seeds=(1, 2), measure_cycles=500
        )
        assert table.headers[:3] == ["failed_links", "scenarios", "failed_slots"]
        assert [row[0] for row in table.rows] == [0, 1]
        baseline = table.row_by_key(0)
        assert baseline[1] == 1      # single pristine scenario
        assert baseline[2] == 0      # which cannot fail
        faulted = table.row_by_key(1)
        assert faulted[1] == 2       # one scenario per seed
        # the pristine fabric's remap cost is a lower bound for the ensemble
        if faulted[3] != "-":
            assert faulted[3] >= baseline[3]
