"""The saturation-sweep experiment: shape, monotonicity, engine choice."""

from __future__ import annotations

from repro.experiments.latency_sweep import run_latency_sweep


class TestLatencySweep:
    def test_small_sweep_shape_and_saturation(self):
        table = run_latency_sweep(
            rates=(0.05, 0.30),
            patterns=("uniform",),
            measure_cycles=2_000,
        )
        assert table.headers == ["rate_flits_cycle", "uniform_mean", "uniform_p95"]
        assert [row[0] for row in table.rows] == [0.05, 0.30]
        low, high = table.rows[0], table.rows[1]
        # Latency rises toward saturation; tails rise at least as fast.
        assert high[1] > low[1]
        assert high[2] >= low[2]

    def test_engines_produce_identical_tables(self):
        kwargs = dict(rates=(0.08,), patterns=("transpose",), measure_cycles=1_500)
        event = run_latency_sweep(engine="event", **kwargs)
        cycle = run_latency_sweep(engine="cycle", **kwargs)
        assert event.rows == cycle.rows

    def test_vcs_flow_through(self):
        table = run_latency_sweep(
            rates=(0.08,), patterns=("uniform",), measure_cycles=1_500, num_vcs=2
        )
        assert "2 VC(s)" in table.notes[0]
        assert table.rows and table.rows[0][1] > 0
