"""Tests for the mesh-vs-torus exploration experiment."""

from __future__ import annotations

from repro.experiments.topology_explore import run_topology_explore


class TestTopologyExplore:
    def test_torus_never_costlier(self):
        table = run_topology_explore(apps=("pip", "dsp"))
        for row in table.rows:
            app, mesh_cost, torus_cost, saving, _mbw, _tbw = row
            assert torus_cost <= mesh_cost, app
            assert saving >= 0.0, app

    def test_columns(self):
        table = run_topology_explore(apps=("pip",))
        assert table.headers[0] == "app"
        assert len(table.rows) == 1
        assert len(table.rows[0]) == len(table.headers)
