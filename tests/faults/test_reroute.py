"""Tests for fault-tolerant rerouting (:mod:`repro.faults.reroute`)."""

from __future__ import annotations

import pytest

from repro.errors import FaultError
from repro.faults.reroute import (
    check_commodities_connected,
    fault_reroute,
    verify_deadlock_free,
)
from repro.faults.spec import FaultSpec
from repro.graphs.commodities import Commodity
from repro.graphs.topology import NoCTopology
from repro.routing.base import RoutingResult
from repro.routing.min_path import min_path_routing


def _commodity(index, src, dst, value=10.0):
    return Commodity(index, f"s{index}", f"d{index}", src, dst, value)


def _assert_paths_avoid(routing, failed_pairs):
    banned = {(a, b) for a, b in failed_pairs} | {(b, a) for a, b in failed_pairs}
    for path in routing.paths.values():
        hops = set(zip(path, path[1:]))
        assert not (hops & banned), f"path {path} crosses a failed link"


class TestFaultReroute:
    def test_avoids_failed_links_on_mesh(self, mesh4x4):
        failed = ((1, 2), (5, 6))
        degraded = FaultSpec(failed_links=failed).apply(mesh4x4)
        commodities = [_commodity(0, 0, 3), _commodity(1, 4, 7), _commodity(2, 3, 0)]
        routing = fault_reroute(degraded, commodities)
        assert routing.algorithm == "fault-reroute"
        _assert_paths_avoid(routing, failed)

    def test_avoids_failed_router_on_torus(self, torus3x3):
        degraded = FaultSpec(failed_routers=(4,)).apply(torus3x3)
        commodities = [
            _commodity(0, 0, 8), _commodity(1, 3, 5), _commodity(2, 1, 7),
        ]
        routing = fault_reroute(degraded, commodities)
        for path in routing.paths.values():
            assert 4 not in path

    def test_paths_are_minimal_on_the_degraded_metric(self, mesh4x4):
        degraded = FaultSpec(failed_links=((1, 2),)).apply(mesh4x4)
        commodities = [_commodity(i, src, dst) for i, (src, dst) in enumerate(
            [(0, 3), (1, 2), (12, 15), (0, 15)]
        )]
        routing = fault_reroute(degraded, commodities)
        for commodity in commodities:
            path = routing.paths[commodity.index]
            assert len(path) - 1 == degraded.distance(
                commodity.src_node, commodity.dst_node
            )

    def test_pristine_topology_matches_min_path(self, mesh4x4):
        commodities = [_commodity(0, 0, 15), _commodity(1, 12, 3)]
        rerouted = fault_reroute(mesh4x4, commodities)
        baseline = min_path_routing(mesh4x4, commodities)
        assert rerouted.paths == baseline.paths

    def test_disconnected_commodity_named(self, mesh2x2):
        # Cutting both of node 0's links strands it entirely.
        degraded = FaultSpec(failed_links=((0, 1), (0, 2))).apply(mesh2x2)
        with pytest.raises(FaultError, match=r"commodity 1 \(0->3\)"):
            fault_reroute(degraded, [_commodity(0, 1, 2), _commodity(1, 0, 3)])

    def test_check_connected_accepts_surviving_pairs(self, mesh4x4):
        degraded = FaultSpec(failed_links=((0, 1),)).apply(mesh4x4)
        check_commodities_connected(degraded, [_commodity(0, 0, 1)])


class TestVerifyDeadlockFree:
    def test_constructed_cycle_raises(self, mesh2x2):
        commodities = [
            _commodity(0, 0, 3), _commodity(1, 1, 2),
            _commodity(2, 3, 0), _commodity(3, 2, 1),
        ]
        paths = {0: [0, 1, 3], 1: [1, 3, 2], 2: [3, 2, 0], 3: [2, 0, 1]}
        routing = RoutingResult.from_paths(mesh2x2, commodities, paths, "ring")
        with pytest.raises(FaultError, match="channel-dependency cycle"):
            verify_deadlock_free(routing)

    def test_acyclic_routing_passes(self, mesh4x4):
        routing = min_path_routing(mesh4x4, [_commodity(0, 0, 15)])
        verify_deadlock_free(routing)

    @pytest.mark.parametrize("spec", [
        FaultSpec(failed_links=((1, 2), (9, 10))),
        FaultSpec(failed_routers=(5,)),
        FaultSpec(random_link_failures=2, fault_seed=4),
    ])
    def test_rerouted_app_traffic_stays_deadlock_free(self, spec):
        """fault_reroute's re-check passes for realistic surviving traffic."""
        from repro.graphs.commodities import build_commodities
        from repro.graphs.random_graphs import random_core_graph
        from repro.mapping.nmap import nmap_single_path

        app = random_core_graph(12, seed=3)
        mesh = NoCTopology.mesh(4, 4, link_bandwidth=app.total_bandwidth())
        degraded = spec.apply(mesh)
        mapping = nmap_single_path(app, degraded).mapping
        commodities = build_commodities(app, mapping)
        routing = fault_reroute(degraded, commodities)
        verify_deadlock_free(routing)  # idempotent, must not raise
