"""Tests for the resilience mapping objective (:mod:`repro.faults.resilience`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import vopd
from repro.api import MapRequest, NmapOptions, AnnealingOptions, TopologySpec, run
from repro.errors import ApiError, MappingError
from repro.faults.resilience import (
    expected_fault_cost,
    resilience_distance_sum,
    resilience_view,
    single_link_failure_ensemble,
    undirected_links,
)
from repro.graphs.topology import NoCTopology
from repro.mapping.annealing import annealing_mapping
from repro.mapping.base import Mapping
from repro.mapping.nmap import nmap_single_path
from repro.metrics.comm_cost import comm_cost


class TestEnsemble:
    def test_one_scenario_per_undirected_link(self, mesh4x4):
        links = undirected_links(mesh4x4)
        ensemble = single_link_failure_ensemble(mesh4x4)
        assert len(ensemble) == len(links) == mesh4x4.num_links // 2
        for view, link in zip(ensemble, links):
            assert view.is_degraded
            assert not view.has_link(*link)

    def test_distance_sum_is_exact_int64(self, mesh3x3):
        total, size = resilience_distance_sum(mesh3x3)
        assert total.dtype == np.int64
        assert size == mesh3x3.num_links // 2
        # each scenario's distances dominate the pristine ones
        assert (total >= size * mesh3x3.distance_matrix()).all()

    def test_view_prices_whole_ensemble(self, mesh3x3, tiny_graph):
        view, size = resilience_view(mesh3x3)
        placement = {"a": 0, "b": 1, "c": 2}
        on_view = comm_cost(Mapping(tiny_graph, view, placement))
        by_hand = sum(
            comm_cost(Mapping(tiny_graph, scenario, placement))
            for scenario in single_link_failure_ensemble(mesh3x3)
        )
        assert on_view == by_hand
        assert expected_fault_cost(
            Mapping(tiny_graph, mesh3x3, placement)
        ) == pytest.approx(on_view / size)


class TestNmapResilience:
    def test_stats_report_the_objective(self):
        app = vopd()
        mesh = NoCTopology.mesh(4, 4, link_bandwidth=app.total_bandwidth())
        result = nmap_single_path(app, mesh, objective="resilience")
        assert result.stats["objective"] == "resilience"
        expected = result.stats["expected_fault_cost"]
        assert expected == pytest.approx(expected_fault_cost(result.mapping))
        # the reported comm cost is the pristine Equation-7 cost
        assert result.mapping.topology is mesh
        assert comm_cost(result.mapping) == result.comm_cost

    def test_tight_bandwidth_rejected(self):
        app = vopd()
        mesh = NoCTopology.mesh(4, 4, link_bandwidth=100.0)
        with pytest.raises(MappingError, match="pure-cost regime"):
            nmap_single_path(app, mesh, objective="resilience")

    def test_default_objective_unchanged(self):
        app = vopd()
        mesh = NoCTopology.mesh(4, 4, link_bandwidth=app.total_bandwidth())
        result = nmap_single_path(app, mesh)
        assert "expected_fault_cost" not in result.stats


class TestAnnealingResilience:
    def test_run_completes_with_stats(self, square_graph):
        mesh = NoCTopology.mesh(2, 2, link_bandwidth=1000.0)
        result = annealing_mapping(
            square_graph, mesh, seed=3, objective="resilience"
        )
        assert result.stats["objective"] == "resilience"
        assert result.stats["expected_fault_cost"] == pytest.approx(
            expected_fault_cost(result.mapping)
        )
        assert result.mapping.topology is mesh


class TestApiSurface:
    def test_bogus_objective_rejected(self):
        with pytest.raises(ApiError, match="objective"):
            NmapOptions(objective="bogus").validate()
        with pytest.raises(ApiError, match="objective"):
            AnnealingOptions(objective="bogus").validate()
        with pytest.raises(ApiError, match="objective"):
            run(
                MapRequest(
                    app="pip",
                    mapper="nmap",
                    options=NmapOptions(objective="bogus"),
                    price_bandwidth=False,
                )
            )

    def test_map_request_with_resilience_objective(self):
        app = vopd()
        response = run(
            MapRequest(
                app="vopd",
                mapper="nmap",
                topology=TopologySpec.parse(
                    "mesh:4x4", link_bandwidth=app.total_bandwidth()
                ),
                options=NmapOptions(objective="resilience"),
                price_bandwidth=False,
            )
        )
        assert response.stats["objective"] == "resilience"
        assert response.stats["expected_fault_cost"] > 0
        assert response.feasible
