"""Unit tests for :class:`repro.faults.spec.FaultSpec`."""

from __future__ import annotations

import json

import pytest

from repro.errors import ApiError, FaultError
from repro.faults.spec import FaultSpec
from repro.graphs.topology import UNREACHABLE, NoCTopology


class TestConstruction:
    def test_pairs_canonicalized_and_deduplicated(self):
        spec = FaultSpec(failed_links=((4, 3), (3, 4), (0, 1)))
        assert spec.failed_links == ((0, 1), (3, 4))

    def test_routers_sorted_and_deduplicated(self):
        spec = FaultSpec(failed_routers=(5, 2, 5))
        assert spec.failed_routers == (2, 5)

    def test_degraded_links_canonicalized(self):
        spec = FaultSpec(degraded_links=((4, 3, 0.5), (3, 4, 0.5)))
        assert spec.degraded_links == ((3, 4, 0.5),)

    def test_empty_spec_is_empty(self):
        assert FaultSpec().is_empty
        assert not FaultSpec(failed_links=((0, 1),)).is_empty
        assert not FaultSpec(random_link_failures=2).is_empty

    def test_self_link_rejected(self):
        with pytest.raises(ApiError, match="itself"):
            FaultSpec(failed_links=((3, 3),))

    def test_negative_node_rejected(self):
        with pytest.raises(ApiError, match="non-negative"):
            FaultSpec(failed_links=((-1, 2),))

    def test_malformed_pair_rejected(self):
        with pytest.raises(ApiError, match="pair"):
            FaultSpec(failed_links=(3,))

    def test_bool_is_not_a_node(self):
        with pytest.raises(ApiError):
            FaultSpec(failed_routers=(True,))

    def test_degrade_factor_out_of_range(self):
        with pytest.raises(ApiError, match=r"\(0, 1\)"):
            FaultSpec(degraded_links=((0, 1, 1.5),))
        with pytest.raises(ApiError, match=r"\(0, 1\)"):
            FaultSpec(degraded_links=((0, 1, 0.0),))

    def test_conflicting_degrade_factors_rejected(self):
        with pytest.raises(ApiError, match="different factors"):
            FaultSpec(degraded_links=((0, 1, 0.5), (1, 0, 0.25)))

    def test_failed_and_degraded_overlap_rejected(self):
        with pytest.raises(ApiError, match="both failed and degraded"):
            FaultSpec(failed_links=((0, 1),), degraded_links=((1, 0, 0.5),))

    def test_negative_random_failures_rejected(self):
        with pytest.raises(ApiError, match="random_link_failures"):
            FaultSpec(random_link_failures=-1)

    def test_describe_mentions_every_component(self):
        spec = FaultSpec(
            failed_links=((0, 1),),
            failed_routers=(5,),
            degraded_links=((2, 3, 0.5),),
            random_link_failures=2,
            fault_seed=7,
        )
        text = spec.describe()
        assert "0-1" in text
        assert "5" in text
        assert "2-3x0.5" in text
        assert "seed 7" in text
        assert FaultSpec().describe() == "no faults"


class TestSerialization:
    def test_json_round_trip(self):
        spec = FaultSpec(
            failed_links=((1, 2),),
            failed_routers=(7,),
            degraded_links=((3, 4, 0.25),),
            random_link_failures=1,
            fault_seed=42,
        )
        rebuilt = FaultSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ApiError, match="unknown fault field"):
            FaultSpec.from_dict({"failed_wires": [[0, 1]]})

    def test_non_dict_payload_rejected(self):
        with pytest.raises(ApiError, match="dict"):
            FaultSpec.from_dict([0, 1])

    def test_missing_fields_default_to_empty(self):
        assert FaultSpec.from_dict({}) == FaultSpec()


class TestResolve:
    def test_resolution_is_deterministic(self, mesh4x4):
        spec = FaultSpec(random_link_failures=3, fault_seed=9)
        first = spec.resolve(mesh4x4)
        second = spec.resolve(mesh4x4)
        assert first == second
        assert first.random_link_failures == 0
        assert len(first.failed_links) == 3

    def test_different_seeds_differ(self, mesh4x4):
        draws = {
            FaultSpec(random_link_failures=2, fault_seed=s).resolve(mesh4x4).failed_links
            for s in range(8)
        }
        assert len(draws) > 1

    def test_candidates_exclude_existing_faults(self, mesh4x4):
        spec = FaultSpec(
            failed_links=((0, 1),),
            failed_routers=(5,),
            degraded_links=((2, 3, 0.5),),
            random_link_failures=4,
            fault_seed=1,
        )
        resolved = spec.resolve(mesh4x4)
        drawn = set(resolved.failed_links) - {(0, 1)}
        assert (2, 3) not in drawn
        for a, b in drawn:
            assert 5 not in (a, b)

    def test_too_many_failures_raise(self, mesh2x2):
        with pytest.raises(FaultError, match="candidate links"):
            FaultSpec(random_link_failures=5).resolve(mesh2x2)

    def test_no_random_component_is_identity(self, mesh4x4):
        spec = FaultSpec(failed_links=((0, 1),))
        assert spec.resolve(mesh4x4) is spec


class TestApply:
    def test_empty_spec_returns_same_topology(self, mesh4x4):
        assert FaultSpec().apply(mesh4x4) is mesh4x4

    def test_failed_link_removed_both_directions(self, mesh4x4):
        degraded = FaultSpec(failed_links=((1, 2),)).apply(mesh4x4)
        assert degraded.is_degraded
        assert not degraded.has_link(1, 2)
        assert not degraded.has_link(2, 1)
        assert mesh4x4.has_link(1, 2)  # the pristine view is untouched

    def test_failed_link_forces_detour_distances(self, mesh4x4):
        degraded = FaultSpec(failed_links=((0, 1),)).apply(mesh4x4)
        # 0 and 1 are adjacent in the mesh; with the link gone the shortest
        # surviving route is 0 -> 4 -> 5 -> 1.
        assert mesh4x4.distance(0, 1) == 1
        assert degraded.distance(0, 1) == 3

    def test_failed_router_isolated(self, mesh4x4):
        degraded = FaultSpec(failed_routers=(5,)).apply(mesh4x4)
        assert 5 not in degraded.healthy_nodes()
        for neighbor in (1, 4, 6, 9):
            assert not degraded.has_link(5, neighbor)
            assert not degraded.has_link(neighbor, 5)
        assert degraded.distance(5, 0) >= UNREACHABLE

    def test_degraded_link_scales_bandwidth_both_directions(self, mesh4x4):
        base = mesh4x4.link_bandwidth(1, 2)
        degraded = FaultSpec(degraded_links=((1, 2, 0.25),)).apply(mesh4x4)
        assert degraded.link_bandwidth(1, 2) == pytest.approx(base * 0.25)
        assert degraded.link_bandwidth(2, 1) == pytest.approx(base * 0.25)
        assert mesh4x4.link_bandwidth(1, 2) == base

    def test_unknown_link_raises(self, mesh4x4):
        # nodes 3 and 4 sit on different rows of the row-major 4x4 mesh
        with pytest.raises(FaultError, match="no link between 3 and 4"):
            FaultSpec(failed_links=((3, 4),)).apply(mesh4x4)

    def test_unknown_router_raises(self, mesh4x4):
        with pytest.raises(FaultError, match="outside"):
            FaultSpec(failed_routers=(99,)).apply(mesh4x4)

    def test_degrading_a_router_killed_link_raises(self, mesh4x4):
        spec = FaultSpec(failed_routers=(5,), degraded_links=((5, 6, 0.5),))
        with pytest.raises(FaultError, match="failed in this scenario"):
            spec.apply(mesh4x4)

    def test_router_failure_subsumes_link_failure(self, mesh4x4):
        """A link listed explicitly and killed by a router failure is fine."""
        degraded = FaultSpec(
            failed_routers=(5,), failed_links=((5, 6),)
        ).apply(mesh4x4)
        assert degraded.is_degraded
        assert not degraded.has_link(5, 6)

    def test_apply_resolves_random_failures(self, mesh4x4):
        spec = FaultSpec(random_link_failures=2, fault_seed=3)
        degraded = spec.apply(mesh4x4)
        resolved = spec.resolve(mesh4x4)
        for a, b in resolved.failed_links:
            assert not degraded.has_link(a, b)
        assert degraded.num_links == mesh4x4.num_links - 4

    def test_torus_wrap_links_can_fail(self, torus3x3):
        degraded = FaultSpec(failed_links=((0, 2),)).apply(torus3x3)
        assert not degraded.has_link(0, 2)
        assert degraded.distance(0, 2) == 2


class TestCliParsing:
    def test_parse_link(self):
        assert FaultSpec.parse_link("3-4") == (3, 4)
        assert FaultSpec.parse_link(" 7-2 ") == (2, 7)

    @pytest.mark.parametrize("text", ["34", "3-", "-4", "a-b", "3:4"])
    def test_parse_link_rejects_malformed(self, text):
        with pytest.raises(ApiError, match="3-4"):
            FaultSpec.parse_link(text)

    def test_parse_degraded(self):
        assert FaultSpec.parse_degraded("3-4:0.5") == (3, 4, 0.5)

    @pytest.mark.parametrize("text", ["3-4", "3-4:", "3-4:x"])
    def test_parse_degraded_rejects_malformed(self, text):
        with pytest.raises(ApiError):
            FaultSpec.parse_degraded(text)
