"""The content-addressed store's contracts, failure paths first.

Covers the satellite checklist explicitly: corrupted/truncated entries
fall back to recompute (never crash), concurrent writers of one key leave
one valid entry (atomic rename), a schema-version bump invalidates old
entries, and the in-flight protocol executes a stampede exactly once.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.service.store import ResultStore

KEY = "ab" + "cd" * 31  # 64 hex chars, like a real SHA-256 key


def entry_bytes(tag: str = "x") -> bytes:
    return (
        json.dumps({"kind": "map-response", "tag": tag}, sort_keys=True) + "\n"
    ).encode()


class TestBasicTier:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(KEY) is None
        store.put(KEY, entry_bytes())
        assert store.get(KEY) == entry_bytes()

    def test_entries_are_schema_namespaced_and_sharded(self, tmp_path):
        store = ResultStore(tmp_path, schema_version=1)
        store.put(KEY, entry_bytes())
        path = store.path_for(KEY)
        assert path.exists()
        assert path.parent.name == KEY[:2]
        assert path.parent.parent.name == "v1"

    def test_schema_bump_invalidates_old_entries(self, tmp_path):
        ResultStore(tmp_path, schema_version=1).put(KEY, entry_bytes())
        bumped = ResultStore(tmp_path, schema_version=2)
        assert bumped.get(KEY) is None
        # The old namespace is untouched — a rollback still reads it.
        assert ResultStore(tmp_path, schema_version=1).get(KEY) == entry_bytes()

    def test_persistence_across_store_instances(self, tmp_path):
        ResultStore(tmp_path).put(KEY, entry_bytes())
        assert ResultStore(tmp_path).get(KEY) == entry_bytes()

    def test_memory_store_has_no_paths_but_same_semantics(self):
        store = ResultStore(None)
        with pytest.raises(ValueError):
            store.path_for(KEY)
        store.put(KEY, entry_bytes())
        assert store.get(KEY) == entry_bytes()


class TestCorruptionFallback:
    @pytest.mark.parametrize(
        "garbage",
        [
            b"",  # zero-length file
            b'{"kind": "map-resp',  # truncated mid-write
            b"\x00\xff\x17 not json at all",
            b'["a", "list", "not", "an", "object"]',
            b'{"no_kind_field": true}',
        ],
    )
    def test_bad_entry_reads_as_miss_and_is_dropped(self, tmp_path, garbage):
        store = ResultStore(tmp_path)
        path = store.path_for(KEY)
        path.parent.mkdir(parents=True)
        path.write_bytes(garbage)
        assert store.get(KEY) is None
        assert not path.exists()
        assert store.stats()["corrupt_dropped"] == 1

    def test_corrupt_entry_recomputes_and_repairs(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.path_for(KEY)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"garbage{{{")
        data, origin = store.get_or_compute(KEY, lambda: (entry_bytes(), True))
        assert origin == "computed"
        assert data == entry_bytes()
        assert store.get(KEY) == entry_bytes()  # repaired on disk


class TestAtomicWrites:
    def test_concurrent_writers_produce_one_valid_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        barrier = threading.Barrier(8)
        errors: list[BaseException] = []

        def write():
            try:
                barrier.wait()
                for _ in range(50):
                    store.put(KEY, entry_bytes())
            except BaseException as exc:  # noqa: BLE001 — recorded for assert
                errors.append(exc)

        threads = [threading.Thread(target=write) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert store.get(KEY) == entry_bytes()
        # No temp droppings, exactly one entry file.
        files = list(store.path_for(KEY).parent.iterdir())
        assert files == [store.path_for(KEY)]


class TestInFlightDedup:
    def test_stampede_executes_once_and_bytes_match(self, tmp_path):
        store = ResultStore(tmp_path)
        calls = []
        barrier = threading.Barrier(10)
        results: list[bytes] = []
        lock = threading.Lock()

        def compute():
            calls.append(1)
            return entry_bytes("computed-once"), True

        def submit():
            barrier.wait()
            data, _ = store.get_or_compute(KEY, compute)
            with lock:
                results.append(data)

        threads = [threading.Thread(target=submit) for _ in range(10)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(calls) == 1
        assert len(set(results)) == 1 and len(results) == 10
        assert store.stats()["executed"] == 1

    def test_error_results_reach_waiters_but_are_not_persisted(self, tmp_path):
        store = ResultStore(tmp_path)
        state, _ = store.claim(KEY)
        assert state == "owned"
        waited: list[bytes | None] = []
        thread = threading.Thread(target=lambda: waited.append(store.wait(KEY, 10)))
        thread.start()
        error = (
            json.dumps({"kind": "error-response", "error": "BatchError"}) + "\n"
        ).encode()
        store.publish(KEY, error, cache=False)
        thread.join(timeout=30)
        assert waited == [error]
        assert store.get(KEY) is None  # next submission recomputes
        assert store.stats()["errors_uncached"] == 1

    def test_abandon_wakes_waiters_with_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.claim(KEY)[0] == "owned"
        waited: list[bytes | None] = []
        thread = threading.Thread(target=lambda: waited.append(store.wait(KEY, 10)))
        thread.start()
        store.abandon(KEY)
        thread.join(timeout=30)
        assert waited == [None]
        # The key is claimable again.
        assert store.claim(KEY)[0] == "owned"

    def test_claim_after_publish_is_a_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.claim(KEY)[0] == "owned"
        store.publish(KEY, entry_bytes())
        state, data = store.claim(KEY)
        assert state == "hit"
        assert data == entry_bytes()


def keyed(index: int) -> str:
    """Distinct 64-hex-char keys, stable per index."""
    return f"{index:02x}" * 32


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBoundedDisk:
    """The eviction ladder: TTL expiry, LRU cap, in-flight protection."""

    def test_ttl_expiry_reads_as_miss_and_unlinks(self, tmp_path):
        clock = FakeClock()
        store = ResultStore(tmp_path, ttl=60.0, clock=clock)
        store.put(KEY, entry_bytes())
        clock.advance(59.0)
        assert store.get(KEY) == entry_bytes()  # still fresh (and touched)
        clock.advance(59.0)
        assert store.get(KEY) == entry_bytes()  # the touch reset the clock
        clock.advance(61.0)
        assert store.get(KEY) is None
        assert not store.path_for(KEY).exists()
        assert store.stats()["ttl_expired"] == 1

    def test_ttl_expiry_in_memory_tier(self):
        clock = FakeClock()
        store = ResultStore(None, ttl=10.0, clock=clock)
        store.put(KEY, entry_bytes())
        clock.advance(11.0)
        assert store.get(KEY) is None
        assert store.stats()["ttl_expired"] == 1

    def test_size_cap_evicts_least_recently_read(self, tmp_path):
        clock = FakeClock()
        size = len(entry_bytes())
        store = ResultStore(tmp_path, max_bytes=3 * size, clock=clock)
        for index in range(3):
            store.put(keyed(index), entry_bytes())
            clock.advance(1.0)
        # Touch key 0: key 1 becomes the LRU victim.
        assert store.get(keyed(0)) is not None
        clock.advance(1.0)
        store.put(keyed(3), entry_bytes())
        assert store.get(keyed(1)) is None, "LRU entry should have been evicted"
        for index in (0, 2, 3):
            assert store.get(keyed(index)) is not None
        assert store.stats()["evicted"] == 1
        assert store.stats()["bytes"] <= 3 * size

    def test_sustained_writes_keep_disk_bounded(self, tmp_path):
        size = len(entry_bytes())
        cap = 5 * size
        store = ResultStore(tmp_path, max_bytes=cap)
        for index in range(50):
            store.put(keyed(index), entry_bytes())
        assert store.stats()["bytes"] <= cap
        assert store.stats()["entries"] <= 5
        namespace = store.namespace
        on_disk = sum(
            entry.stat().st_size
            for shard in namespace.iterdir()
            for entry in shard.iterdir()
        )
        assert on_disk <= cap

    def test_inflight_keys_are_never_evicted(self, tmp_path):
        size = len(entry_bytes())
        store = ResultStore(tmp_path, max_bytes=2 * size)
        assert store.claim(keyed(0))[0] == "owned"
        store.publish(keyed(0), entry_bytes())
        # A waiter is now parked on key 1's computation.
        assert store.claim(keyed(1))[0] == "owned"
        waited: list[bytes | None] = []
        thread = threading.Thread(
            target=lambda: waited.append(store.wait(keyed(1), 10))
        )
        thread.start()
        # These writes overflow the cap, but key 1 is in flight: its
        # eventual publish must reach the waiter untouched.
        for index in range(2, 6):
            store.put(keyed(index), entry_bytes())
        store.publish(keyed(1), entry_bytes("published"))
        thread.join(timeout=30)
        assert waited == [entry_bytes("published")]

    def test_recency_survives_restart_via_mtimes(self, tmp_path):
        import os
        import time

        first = ResultStore(tmp_path, max_bytes=10_000)
        for index in range(3):
            first.put(keyed(index), entry_bytes())
        # Make key 0 the most recently used on disk, unambiguously.
        now = time.time()
        os.utime(first.path_for(keyed(1)), (now - 200, now - 200))
        os.utime(first.path_for(keyed(2)), (now - 100, now - 100))
        os.utime(first.path_for(keyed(0)), (now, now))

        size = len(entry_bytes())
        second = ResultStore(tmp_path, max_bytes=3 * size)
        assert second.stats()["entries"] == 3
        second.put(keyed(3), entry_bytes())
        # The restart-seeded LRU order evicts key 1 (oldest mtime).
        assert second.get(keyed(1)) is None
        assert second.get(keyed(0)) is not None

    def test_unbounded_store_reports_no_tracking_counters(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, entry_bytes())
        stats = store.stats()
        assert "bytes" not in stats and "entries" not in stats
