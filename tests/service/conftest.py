"""Service-test fixtures: a live background-thread server per test.

The factory boots a real :class:`NocService` on an ephemeral port with a
tmp-dir store and hands back a connected client; every service started
through it is drained at teardown.  Tests default to ``executor="serial"``
— the executor is orthogonal to the HTTP/store/dedup contracts under test
here (run_batch's own suite covers executor equivalence), and serial keeps
the suite fast and fork-free.
"""

from __future__ import annotations

import pytest

from repro.service import NocService, ServiceClient, ServiceConfig


@pytest.fixture
def make_service(tmp_path):
    """Factory: ``make_service(**config_overrides) -> (service, client)``."""
    started: list[NocService] = []

    def factory(**overrides) -> tuple[NocService, ServiceClient]:
        overrides.setdefault("executor", "serial")
        overrides.setdefault("store_root", str(tmp_path / "store"))
        service = NocService(ServiceConfig(**overrides))
        started.append(service)
        port = service.start()
        return service, ServiceClient(f"http://127.0.0.1:{port}", timeout=60.0)

    yield factory
    for service in started:
        try:
            service.shutdown(timeout=60)
        except Exception:  # noqa: BLE001 — teardown must reach every server
            pass


@pytest.fixture
def service_pair(make_service):
    """One default service + client (the common case)."""
    return make_service()
