"""The client transport's resilience machinery, deterministically.

Backoff math runs against a stubbed RNG, the retry loop against a real
socket server scripted to refuse/reject/accept per connection, and the
circuit breaker against a port nothing listens on — no sleeps longer than
the scripted backoff (kept at milliseconds), no real service needed.
"""

from __future__ import annotations

import http.server
import json
import socket
import threading

import pytest

from repro.api import MapRequest
from repro.errors import CircuitOpenError, ServiceError
from repro.service import ServiceClient
from repro.service.wire import status_for_error


class FixedRng:
    """random()-compatible stub returning a constant."""

    def __init__(self, value: float) -> None:
        self.value = value

    def random(self) -> float:
        return self.value


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class ScriptedServer:
    """An HTTP server answering POST /v1/jobs from a per-request script.

    Each script entry is ``(status, extra_headers)``; an entry of ``None``
    drops the connection without answering (a transport failure).  Every
    handled request is appended to ``seen``.
    """

    def __init__(self, script: list) -> None:
        self.script = list(script)
        self.seen: list[int] = []
        outer = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_POST(self):  # noqa: N802 — http.server API
                step = outer.script.pop(0) if outer.script else (202, {})
                outer.seen.append(len(outer.seen))
                if step is None:
                    self.connection.close()
                    return
                status, headers = step
                length = int(self.headers.get("Content-Length", 0))
                self.rfile.read(length)
                body = json.dumps(
                    {"id": "job-1", "batch": False, "slots": 1, "keys": ["k"]}
                    if status == 202
                    else {"error": "OverloadedError", "message": "busy"}
                ).encode()
                self.send_response(status)
                for name, value in headers.items():
                    self.send_header(name, value)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence
                pass

        self.httpd = http.server.ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self.port = self.httpd.server_address[1]
        self.thread = threading.Thread(target=self.httpd.serve_forever, daemon=True)
        self.thread.start()

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()


@pytest.fixture
def scripted():
    servers = []

    def factory(script):
        server = ScriptedServer(script)
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.close()


REQUEST = MapRequest(app="vopd", price_bandwidth=False)


class TestBackoffMath:
    def test_exponential_growth_with_cap(self):
        client = ServiceClient(
            "http://127.0.0.1:1",
            backoff=1.0,
            backoff_max=8.0,
            rng=FixedRng(1.0),  # jitter factor 1.0 — the nominal value
        )
        assert [client._delay(a, None) for a in range(5)] == [
            1.0,
            2.0,
            4.0,
            8.0,
            8.0,  # capped
        ]

    def test_jitter_spans_half_to_full(self):
        low = ServiceClient("http://127.0.0.1:1", backoff=1.0, rng=FixedRng(0.0))
        high = ServiceClient("http://127.0.0.1:1", backoff=1.0, rng=FixedRng(1.0))
        assert low._delay(0, None) == 0.5
        assert high._delay(0, None) == 1.0

    def test_retry_after_hint_raises_the_delay(self):
        client = ServiceClient(
            "http://127.0.0.1:1", backoff=0.01, backoff_max=8.0, rng=FixedRng(0.0)
        )
        assert client._delay(0, "3") == 3.0
        # The hint is capped at backoff_max and never lowers the delay.
        assert client._delay(0, "900") == 8.0
        assert client._delay(0, "garbage") == 0.005

    def test_default_is_zero_retries(self):
        assert ServiceClient("http://127.0.0.1:1")._retries == 0


class TestRetryLoop:
    def test_transport_failure_then_success_submits_once(self, scripted):
        # First connection dropped mid-request, second accepted: with one
        # retry the submit succeeds and the server executed one admission.
        server = scripted([None, (202, {})])
        client = ServiceClient(
            f"http://127.0.0.1:{server.port}",
            timeout=10.0,
            retries=1,
            backoff=0.01,
        )
        ticket = client.submit(REQUEST)
        assert ticket.id == "job-1"
        assert len(server.seen) == 2  # one drop + one success

    def test_429_is_retried_honoring_retry_after(self, scripted):
        server = scripted([(429, {"Retry-After": "0.01"}), (202, {})])
        client = ServiceClient(
            f"http://127.0.0.1:{server.port}",
            timeout=10.0,
            retries=1,
            backoff=0.001,
            backoff_max=0.05,
        )
        ticket = client.submit(REQUEST)
        assert ticket.id == "job-1"

    def test_exhausted_retries_surface_the_rejection(self, scripted):
        server = scripted([(429, {"Retry-After": "1"})] * 3)
        client = ServiceClient(
            f"http://127.0.0.1:{server.port}",
            timeout=10.0,
            retries=2,
            backoff=0.001,
            backoff_max=0.002,  # keep honored hints at 2 ms, not 1 s
        )
        with pytest.raises(ServiceError) as info:
            client.submit(REQUEST)
        assert "429" in str(info.value)
        assert info.value.retry_after == 1.0
        assert len(server.seen) == 3

    def test_zero_retries_fails_immediately(self, scripted):
        server = scripted([(429, {"Retry-After": "1"})])
        client = ServiceClient(f"http://127.0.0.1:{server.port}", timeout=10.0)
        with pytest.raises(ServiceError):
            client.submit(REQUEST)
        assert len(server.seen) == 1

    def test_identity_headers_are_attached(self):
        client = ServiceClient(
            "http://127.0.0.1:1", client_id="alice", priority="high"
        )
        headers = client._headers(b"{}")
        assert headers["X-Repro-Client"] == "alice"
        assert headers["X-Repro-Priority"] == "high"
        assert headers["Content-Type"] == "application/json"
        anonymous = ServiceClient("http://127.0.0.1:1")._headers(None)
        assert "X-Repro-Client" not in anonymous
        assert "Content-Type" not in anonymous


class TestCircuitBreaker:
    def make_client(self, port: int, **overrides) -> ServiceClient:
        overrides.setdefault("timeout", 1.0)
        overrides.setdefault("connect_timeout", 0.2)
        overrides.setdefault("breaker_threshold", 2)
        overrides.setdefault("breaker_cooldown", 30.0)
        return ServiceClient(f"http://127.0.0.1:{port}", **overrides)

    def test_breaker_opens_after_threshold_and_fails_fast(self):
        client = self.make_client(free_port())
        for _ in range(2):
            with pytest.raises(ServiceError) as info:
                client.health()
            assert not isinstance(info.value, CircuitOpenError)
        with pytest.raises(CircuitOpenError) as info:
            client.health()
        assert info.value.retry_after is not None
        assert 0 < info.value.retry_after <= 30.0
        # CircuitOpenError is a ServiceError: existing handlers catch it.
        assert isinstance(info.value, ServiceError)

    def test_half_open_probe_closes_the_breaker(self, scripted):
        server = scripted([(202, {})])
        client = self.make_client(server.port, breaker_cooldown=0.01)
        # Open the breaker against nothing... (monkeying the state
        # directly keeps this free of a second server teardown race).
        client._breaker_failure()
        client._breaker_failure()
        with pytest.raises(CircuitOpenError):
            client._breaker_preflight()
        # ...wait out the cooldown: the next call probes and succeeds,
        # which closes the breaker (failure count reset).
        import time

        time.sleep(0.02)
        ticket = client.submit(REQUEST)
        assert ticket.id == "job-1"
        assert client._failures == 0
        assert client._open_until == 0.0

    def test_disabled_breaker_never_opens(self):
        client = self.make_client(free_port(), breaker_threshold=0, retries=0)
        for _ in range(4):
            with pytest.raises(ServiceError) as info:
                client.health()
            assert not isinstance(info.value, CircuitOpenError)

    def test_circuit_open_error_classifies_as_500_not_422(self):
        # The wire layer must treat breaker/transport errors as service
        # faults, never as "unprocessable request content".
        assert status_for_error("CircuitOpenError") == 500
        assert status_for_error("ServiceError") == 500
        assert status_for_error("QuotaExceededError") == 500
