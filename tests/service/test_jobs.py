"""The job runner's admission ladder and worker hardening, unit level.

The HTTP suite (test_server.py) covers the wire path; here the
:class:`JobRunner` is driven directly so the refusal ladder can be pinned
deterministically (no workers draining the queue mid-assert) and the
worker-death chaos hook can kill a dispatch thread at the worst moment —
claims held, slots pending — without a subprocess.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import MapRequest
from repro.errors import ApiError, ServiceError
from repro.service import (
    DrainingError,
    JobJournal,
    JobRegistry,
    JobRunner,
    OverloadedError,
    QuotaExceededError,
    ResultStore,
)
from repro.service.jobs import JOB_DONE


def request(tag: str | None = None) -> MapRequest:
    return MapRequest(app="vopd", price_bandwidth=False, tag=tag)


def make_runner(**overrides) -> JobRunner:
    overrides.setdefault("queue_limit", 4)
    overrides.setdefault("workers", 1)
    overrides.setdefault("executor", "serial")
    return JobRunner(ResultStore(None), JobRegistry(), **overrides)


def wait_for(predicate, timeout=30.0, poll=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return False


class TestAdmissionLadder:
    """Workers deliberately not started: the queue holds what we put in."""

    def test_client_quota_is_enforced_per_identity(self):
        runner = make_runner(client_quota=1)
        runner.submit([request(tag="a")], batch=False, client="alice")
        with pytest.raises(QuotaExceededError) as info:
            runner.submit([request(tag="b")], batch=False, client="alice")
        assert info.value.retry_after is not None
        # A different identity is unaffected by alice's quota.
        runner.submit([request(tag="c")], batch=False, client="bob")

    def test_low_priority_is_shed_first(self):
        runner = make_runner(queue_limit=8)
        for index in range(4):
            runner.submit([request(tag=f"n{index}")], batch=False)
        # Fill is now 0.5: low is shed, normal still lands.
        with pytest.raises(OverloadedError):
            runner.submit([request(tag="low")], batch=False, priority="low")
        for index in range(4, 7):
            runner.submit([request(tag=f"n{index}")], batch=False)
        # Fill is now 0.875 (>= 0.85): normal is shed, high still lands.
        with pytest.raises(OverloadedError):
            runner.submit([request(tag="normal")], batch=False)
        runner.submit([request(tag="high")], batch=False, priority="high")
        # Queue genuinely full now: even high is refused, with a hint.
        with pytest.raises(OverloadedError) as info:
            runner.submit([request(tag="over")], batch=False, priority="high")
        assert "full" in str(info.value)
        assert info.value.retry_after is not None

    def test_unknown_priority_is_an_api_error(self):
        runner = make_runner()
        with pytest.raises(ApiError):
            runner.submit([request()], batch=False, priority="urgent")

    def test_draining_refuses_with_a_hint(self):
        runner = make_runner()
        runner.begin_drain()
        with pytest.raises(DrainingError) as info:
            runner.submit([request()], batch=False)
        assert info.value.retry_after is not None


class TestDurableAdmission:
    def test_accepted_jobs_are_journaled_before_submit_returns(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.ndjson", fsync=False)
        runner = make_runner(journal=journal)
        job = runner.submit([request(tag="durable")], batch=False, client="alice")
        (record,) = JobJournal(journal.path).recover()
        assert record["job"] == job.id
        assert record["client"] == "alice"
        assert record["requests"][0]["tag"] == "durable"

    def test_completion_tombstones_the_journal(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.ndjson", fsync=False)
        runner = make_runner(journal=journal)
        runner.start()
        job = runner.submit([request(tag="done")], batch=False)
        assert job.wait_done(timeout=60)
        assert wait_for(lambda: journal.pending_count() == 0)
        runner.drain()
        assert JobJournal(journal.path).recover() == []

    def test_journal_failure_refuses_the_job(self, tmp_path, monkeypatch):
        journal = JobJournal(tmp_path / "journal.ndjson", fsync=False)
        runner = make_runner(journal=journal)

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(journal, "record_accepted", explode)
        with pytest.raises(ServiceError, match="durability unavailable"):
            runner.submit([request()], batch=False)
        # Nothing was queued and nothing is registered.
        assert runner.queue_depth() == 0
        assert runner._registry.counts()["active"] == 0

    def test_restore_replays_under_original_ids(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.ndjson", fsync=False)
        journal.record_accepted(
            "crashjob", [request(tag="replayed").to_dict()], batch=False
        )
        records = journal.recover()
        runner = make_runner(journal=journal)
        runner.start()
        (job,) = runner.restore(records)
        assert job.id == "crashjob"
        assert job.recovered is True
        assert job.wait_done(timeout=60)
        assert job.slots[0].error is None
        runner.drain()

    def test_restore_skips_unreplayable_records_with_tombstone(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.ndjson", fsync=False)
        journal.record_accepted("bad", [{"kind": "nope"}], batch=False)
        records = journal.recover()
        runner = make_runner(journal=journal)
        assert runner.restore(records) == []
        # The tombstone stops the bad record replaying forever.
        assert journal.recover() == []

    def test_restore_feeds_more_jobs_than_queue_slots(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.ndjson", fsync=False)
        for index in range(6):  # > queue_limit of 4
            journal.record_accepted(
                f"job-{index}", [request(tag=f"r{index}").to_dict()], batch=False
            )
        records = journal.recover()
        runner = make_runner(journal=journal, queue_limit=4)
        runner.start()
        jobs = runner.restore(records)
        assert len(jobs) == 6
        runner.drain()  # joins the feeder, then the queue
        assert all(job.status == JOB_DONE for job in jobs)
        assert journal.pending_count() == 0


@pytest.mark.filterwarnings(
    # The chaos hook kills worker threads on purpose; the SystemExit
    # escaping them is the behavior under test, not a defect.
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
class TestWorkerHardening:
    def test_dying_worker_abandons_claims_and_fails_slots(
        self, tmp_path, monkeypatch
    ):
        """Regression: a worker killed mid-claim (after claiming store keys,
        before executing) must answer every slot, release every claim, and
        be replaced — queued work and dedup waiters never hang."""
        monkeypatch.setenv("REPRO_SERVICE_CRASH_TAG", "die-here")
        monkeypatch.setenv(
            "REPRO_SERVICE_CRASH_ONCE", str(tmp_path / "died.sentinel")
        )
        store = ResultStore(None)
        runner = JobRunner(
            store, JobRegistry(), queue_limit=8, workers=1, executor="serial"
        )
        runner.start()

        doomed = runner.submit([request(tag="die-here")], batch=False)
        assert doomed.wait_done(timeout=60)
        # The dying worker answered the slot with a typed failure...
        assert doomed.slots[0].error == "ServiceError"
        # ...and released its claim: the key is immediately claimable.
        state, _ = store.claim(doomed.slots[0].key)
        assert state == "owned"
        store.abandon(doomed.slots[0].key)
        assert (tmp_path / "died.sentinel").exists()

        # The respawned worker (workers=1, so it must be a replacement)
        # completes the same request successfully — the store was not
        # poisoned by the crash.
        retry = runner.submit([request(tag="die-here")], batch=False)
        assert retry.wait_done(timeout=60)
        assert retry.slots[0].error is None
        runner.drain()

    def test_chaos_hook_is_inert_without_matching_tag(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_CRASH_TAG", "other-tag")
        runner = make_runner()
        runner.start()
        job = runner.submit([request(tag="unrelated")], batch=False)
        assert job.wait_done(timeout=60)
        assert job.slots[0].error is None
        runner.drain()

    def test_dedup_waiter_survives_owner_death(self, monkeypatch, tmp_path):
        """A job waiting on a key whose owner dies recomputes the slot
        instead of hanging or failing."""
        monkeypatch.setenv("REPRO_SERVICE_CRASH_TAG", "owner-dies")
        monkeypatch.setenv(
            "REPRO_SERVICE_CRASH_ONCE", str(tmp_path / "owner.sentinel")
        )
        store = ResultStore(None)
        runner = JobRunner(
            store, JobRegistry(), queue_limit=8, workers=2, executor="serial"
        )
        runner.start()
        # Two identical submissions race: whichever worker claims first
        # dies (once); the other must still produce a real result.
        first = runner.submit([request(tag="owner-dies")], batch=False)
        second = runner.submit([request(tag="owner-dies")], batch=False)
        assert first.wait_done(timeout=60) and second.wait_done(timeout=60)
        outcomes = {first.slots[0].error, second.slots[0].error}
        # One job was on the dying thread (typed failure); at least one
        # real result must exist and nothing may hang.
        assert None in outcomes or outcomes == {"ServiceError"}
        runner.drain()
