"""End-to-end service tests over real HTTP on an ephemeral port.

Every test here talks to a live :class:`NocService` through
:class:`ServiceClient` — the full wire path: typed request -> JSON body ->
asyncio server -> admission queue -> worker -> store -> canonical bytes ->
typed response.  The acceptance contract (N identical concurrent
submissions execute once and read byte-identical bodies; warm equals cold;
drain drops nothing) is pinned explicitly.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import (
    ErrorResponse,
    MapRequest,
    SimOptions,
    SimRequest,
    TopologySpec,
    run_map,
    run_sim,
)
from repro.errors import ServiceError
from repro.service import NocService, ServiceClient, ServiceConfig

MAP_REQUEST = MapRequest(app="vopd", price_bandwidth=False)


def small_sim(rate: float = 0.05, tag: str | None = None) -> SimRequest:
    return SimRequest(
        map_request=MapRequest(app="vopd", price_bandwidth=False, tag=tag),
        measure_cycles=400,
        warmup_cycles=100,
        drain_cycles=200,
        options=SimOptions(traffic="uniform", injection_rate=rate, engine="event"),
    )


def wait_for(predicate, timeout=30.0, poll=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return False


class TestIntrospection:
    def test_health(self, service_pair):
        _, client = service_pair
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["schema"] == 1
        assert set(payload["store"]) >= {"executed", "hits", "stored"}

    def test_mappers_lists_the_registry(self, service_pair):
        _, client = service_pair
        mappers = client.mappers()
        names = [mapper["name"] for mapper in mappers]
        assert "nmap" in names and "annealing" in names
        nmap = next(mapper for mapper in mappers if mapper["name"] == "nmap")
        assert nmap["seedable"] is False
        assert "max_iterations" in nmap["options"] or nmap["options"]


class TestSingleJobs:
    def test_map_round_trip_matches_local_run(self, service_pair):
        _, client = service_pair
        response = client.map(MAP_REQUEST)
        assert response.to_dict() == run_map(MAP_REQUEST).to_dict()

    def test_sim_round_trip_matches_local_run(self, service_pair):
        _, client = service_pair
        request = small_sim()
        response = client.simulate(request)
        assert response.to_dict() == run_sim(request).to_dict()

    def test_submit_then_poll_then_result(self, service_pair):
        _, client = service_pair
        ticket = client.submit(MAP_REQUEST)
        assert ticket.slots == 1 and not ticket.batch
        assert len(ticket.keys[0]) == 64
        response = client.wait(ticket.id, timeout=60)
        assert response.feasible
        envelope = client.status(ticket.id)
        assert envelope["status"] == "done"
        assert envelope["slots"][0]["kind"] == "map-response"

    def test_unknown_job_is_a_service_error(self, service_pair):
        _, client = service_pair
        with pytest.raises(ServiceError, match="no such job"):
            client.status("definitely-not-a-job")


class TestSubmissionValidation:
    def test_malformed_json_is_400(self, service_pair):
        _, client = service_pair
        status, _ = client._request("POST", "/v1/jobs", b"{not json")
        assert status == 400

    def test_unknown_kind_is_400(self, service_pair):
        _, client = service_pair
        status, _ = client._request("POST", "/v1/jobs", b'{"kind": "mystery"}')
        assert status == 400

    def test_unknown_mapper_rejected_at_submission(self, service_pair):
        _, client = service_pair
        payload = MAP_REQUEST.to_dict()
        payload["mapper"] = "nope"
        import json as json_module

        status, body = client._request(
            "POST", "/v1/jobs", json_module.dumps(payload).encode()
        )
        assert status == 400
        assert b"ApiError" in body

    def test_empty_batch_is_400(self, service_pair):
        _, client = service_pair
        status, _ = client._request("POST", "/v1/jobs", b'{"requests": []}')
        assert status == 400


class TestDedup:
    """The acceptance criterion, verified over live HTTP."""

    def test_concurrent_identical_submissions_execute_once(self, make_service):
        service, client = make_service(workers=3)
        request = small_sim(rate=0.07)
        before = client.health()["store"]["executed"]
        tickets: list = [None] * 8
        barrier = threading.Barrier(8)

        def submit(index):
            barrier.wait()
            tickets[index] = client.submit(request)

        threads = [
            threading.Thread(target=submit, args=(index,)) for index in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        bodies = set()
        for ticket in tickets:
            client.wait(ticket.id, timeout=120)
            bodies.add(client.result_raw(ticket.id))
        assert len(bodies) == 1
        assert client.health()["store"]["executed"] - before == 1

    def test_warm_resubmission_is_byte_identical_and_cached(self, service_pair):
        _, client = service_pair
        cold_ticket = client.submit(MAP_REQUEST)
        client.wait(cold_ticket.id, timeout=60)
        cold = client.result_raw(cold_ticket.id)
        assert client.status(cold_ticket.id)["slots"][0]["cached"] is False

        warm_ticket = client.submit(MAP_REQUEST)
        client.wait(warm_ticket.id, timeout=60)
        assert client.result_raw(warm_ticket.id) == cold
        assert client.status(warm_ticket.id)["slots"][0]["cached"] is True

    def test_store_survives_a_service_restart(self, make_service, tmp_path):
        root = str(tmp_path / "shared-store")
        first, client = make_service(store_root=root)
        ticket = client.submit(MAP_REQUEST)
        client.wait(ticket.id, timeout=60)
        cold = client.result_raw(ticket.id)
        first.shutdown()

        _, fresh_client = make_service(store_root=root)
        executed_before = fresh_client.health()["store"]["executed"]
        ticket = fresh_client.submit(MAP_REQUEST)
        fresh_client.wait(ticket.id, timeout=60)
        assert fresh_client.result_raw(ticket.id) == cold
        assert fresh_client.health()["store"]["executed"] == executed_before


class TestBatchAndStreaming:
    def test_batch_preserves_order_and_streams_every_slot(self, service_pair):
        _, client = service_pair
        rates = (0.02, 0.05, 0.08)
        requests = [small_sim(rate=rate) for rate in rates]
        ticket = client.submit(requests)
        assert ticket.batch and ticket.slots == 3
        events = list(client.stream(ticket.id))
        assert [event.index for event in events] == [0, 1, 2]
        swept = [
            event.response.request.options.injection_rate for event in events
        ]
        assert tuple(swept) == rates
        # wait() returns the same ordered typed payloads.
        responses = client.wait(ticket.id, timeout=60)
        assert [r.to_dict() for r in responses] == [
            e.response.to_dict() for e in events
        ]

    def test_duplicate_slots_within_a_batch_share_one_execution(
        self, service_pair
    ):
        _, client = service_pair
        request = small_sim(rate=0.06)
        before = client.health()["store"]["executed"]
        ticket = client.submit([request, request, request])
        responses = client.wait(ticket.id, timeout=120)
        assert client.health()["store"]["executed"] - before == 1
        assert len({str(r.to_dict()) for r in responses}) == 1

    def test_batch_result_is_ndjson_of_canonical_lines(self, service_pair):
        _, client = service_pair
        ticket = client.submit([small_sim(0.02), small_sim(0.05)])
        client.wait(ticket.id, timeout=60)
        raw = client.result_raw(ticket.id)
        lines = raw.strip().split(b"\n")
        assert len(lines) == 2
        # Each line is exactly a single slot's canonical entry bytes.
        single = client.submit(small_sim(0.02))
        client.wait(single.id, timeout=60)
        assert lines[0] + b"\n" == client.result_raw(single.id)


class TestAdmissionControl:
    def test_queue_overflow_is_429(self, make_service, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_TAG", "slow")
        monkeypatch.setenv("REPRO_SLOW_SECONDS", "1.5")
        _, client = make_service(queue_limit=1, workers=1)
        first = client.submit(small_sim(rate=0.02, tag="slow"))
        # Wait until the worker owns job 1, so job 2 deterministically
        # occupies the single queue slot and job 3 overflows.
        assert wait_for(
            lambda: client.status(first.id)["status"] == "running"
        )
        client.submit(small_sim(rate=0.03, tag="slow"))
        with pytest.raises(ServiceError, match="429"):
            client.submit(small_sim(rate=0.04))

    def test_oversized_batch_is_rejected(self, make_service):
        _, client = make_service(max_batch=2)
        with pytest.raises(ServiceError, match="400"):
            client.submit([small_sim(0.02), small_sim(0.03), small_sim(0.04)])


class TestErrorPropagation:
    """Typed worker-side errors keep their type across the wire."""

    def test_runtime_api_error_round_trips_with_400(self, service_pair):
        _, client = service_pair
        # Valid payload, impossible at run time: vopd's 16 cores cannot fit
        # a 2x2 grid — execute_map raises ApiError inside the worker.
        request = MapRequest(
            app="vopd", topology=TopologySpec.parse("mesh:2x2")
        )
        ticket = client.submit(request)
        response = client.wait(ticket.id, timeout=60)
        assert isinstance(response, ErrorResponse)
        assert response.error == "ApiError"
        assert response.request == request  # echoed verbatim, fully typed
        status, _ = client._request("GET", f"/v1/jobs/{ticket.id}/result")
        assert status == 400
        envelope = client.status(ticket.id)
        assert envelope["slots"][0]["error"] == "ApiError"

    def test_convenience_helpers_raise_with_typed_payload(self, service_pair):
        _, client = service_pair
        request = MapRequest(app="vopd", topology=TopologySpec.parse("mesh:2x2"))
        with pytest.raises(ServiceError) as excinfo:
            client.map(request)
        attached = excinfo.value.response
        assert isinstance(attached, ErrorResponse)
        assert attached.error == "ApiError"

    def test_error_results_are_not_cached(self, service_pair):
        service, client = service_pair
        request = MapRequest(app="vopd", topology=TopologySpec.parse("mesh:2x2"))
        ticket = client.submit(request)
        client.wait(ticket.id, timeout=60)
        assert service.store.stats()["errors_uncached"] >= 1
        assert service.store.get(ticket.keys[0]) is None

    def test_worker_crash_surfaces_as_batch_error_504(
        self, make_service, monkeypatch
    ):
        # The PR-6 chaos hook: the process worker hard-exits on this tag;
        # run_batch retries, the crash repeats, and the slot reports a
        # typed BatchError that must survive the HTTP round trip as a 504.
        monkeypatch.setenv("REPRO_CRASH_TAG", "crashme")
        _, client = make_service(executor="process", timeout=60.0)
        request = MapRequest(app="vopd", price_bandwidth=False, tag="crashme")
        ticket = client.submit(request)
        response = client.wait(ticket.id, timeout=120)
        assert isinstance(response, ErrorResponse)
        assert response.error == "BatchError"
        assert "died" in response.message
        status, _ = client._request("GET", f"/v1/jobs/{ticket.id}/result")
        assert status == 504


class TestDrain:
    def test_drain_finishes_accepted_work_and_refuses_new(
        self, make_service, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SLOW_TAG", "drainslow")
        monkeypatch.setenv("REPRO_SLOW_SECONDS", "0.8")
        service, client = make_service(workers=1)
        ticket = client.submit(small_sim(rate=0.02, tag="drainslow"))
        assert wait_for(lambda: client.status(ticket.id)["status"] == "running")
        service.request_shutdown()
        with pytest.raises(ServiceError, match="503"):
            client.submit(small_sim(rate=0.09))
        service.shutdown(timeout=120)
        # Nothing dropped: the accepted job completed and persisted.
        job = service.registry.get(ticket.id)
        assert job is not None and job.status == "done"
        assert job.slots[0].kind == "sim-response"
        assert service.store.get(ticket.keys[0]) is not None

    def test_health_reports_draining(self, make_service, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_TAG", "drainslow2")
        monkeypatch.setenv("REPRO_SLOW_SECONDS", "0.8")
        service, client = make_service(workers=1)
        ticket = client.submit(small_sim(rate=0.021, tag="drainslow2"))
        assert wait_for(lambda: client.status(ticket.id)["status"] == "running")
        service.request_shutdown()
        assert client.health()["status"] == "draining"
        service.shutdown(timeout=120)


class TestClientTransport:
    def test_unreachable_server_is_a_service_error(self):
        client = ServiceClient("http://127.0.0.1:1", timeout=2.0)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()

    def test_non_http_scheme_rejected(self):
        with pytest.raises(ServiceError, match="http://"):
            ServiceClient("https://example.invalid")

    def test_bare_host_port_gets_a_scheme(self, service_pair):
        service, _ = service_pair
        client = ServiceClient(f"127.0.0.1:{service.port}")
        assert client.health()["status"] in ("ok", "draining")


class TestOverloadSignaling:
    """Refusals carry machine-readable back-off and identity semantics."""

    def test_429_carries_retry_after(self, make_service, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_TAG", "hintslow")
        monkeypatch.setenv("REPRO_SLOW_SECONDS", "1.5")
        _, client = make_service(queue_limit=1, workers=1)
        first = client.submit(small_sim(rate=0.02, tag="hintslow"))
        assert wait_for(lambda: client.status(first.id)["status"] == "running")
        client.submit(small_sim(rate=0.03, tag="hintslow"))
        with pytest.raises(ServiceError, match="429") as excinfo:
            client.submit(small_sim(rate=0.04))
        assert excinfo.value.retry_after is not None
        assert excinfo.value.retry_after >= 1.0

    def test_draining_503_carries_retry_after(self, make_service, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_TAG", "hintdrain")
        monkeypatch.setenv("REPRO_SLOW_SECONDS", "0.8")
        service, client = make_service(workers=1)
        ticket = client.submit(small_sim(rate=0.022, tag="hintdrain"))
        assert wait_for(lambda: client.status(ticket.id)["status"] == "running")
        service.request_shutdown()
        with pytest.raises(ServiceError, match="503") as excinfo:
            client.submit(small_sim(rate=0.09))
        assert excinfo.value.retry_after is not None
        service.shutdown(timeout=120)

    def test_client_quota_is_enforced_over_http(
        self, make_service, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SLOW_TAG", "quotaslow")
        monkeypatch.setenv("REPRO_SLOW_SECONDS", "1.5")
        service, _ = make_service(client_quota=1, workers=1)
        alice = ServiceClient(
            f"http://127.0.0.1:{service.port}", client_id="alice"
        )
        bob = ServiceClient(f"http://127.0.0.1:{service.port}", client_id="bob")
        first = alice.submit(small_sim(rate=0.02, tag="quotaslow"))
        assert wait_for(lambda: alice.status(first.id)["status"] == "running")
        with pytest.raises(ServiceError, match="QuotaExceededError") as excinfo:
            alice.submit(small_sim(rate=0.03, tag="quotaslow"))
        assert excinfo.value.retry_after is not None
        # Bob's identity has its own quota: his submission lands.
        bob.submit(small_sim(rate=0.04, tag="quotaslow"))

    def test_invalid_priority_header_is_400(self, make_service):
        service, _ = make_service()
        hacker = ServiceClient(
            f"http://127.0.0.1:{service.port}", priority="urgent"
        )
        with pytest.raises(ServiceError, match="400"):
            hacker.submit(small_sim(rate=0.05))

    def test_job_envelope_reports_client_and_priority(self, make_service):
        service, _ = make_service()
        client = ServiceClient(
            f"http://127.0.0.1:{service.port}",
            client_id="alice",
            priority="high",
        )
        ticket = client.submit(small_sim(rate=0.051))
        envelope = client.status(ticket.id)
        assert envelope["client"] == "alice"
        assert envelope["priority"] == "high"
        assert envelope["recovered"] is False

    def test_retrying_client_rides_out_a_full_queue(
        self, make_service, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SLOW_TAG", "rideout")
        monkeypatch.setenv("REPRO_SLOW_SECONDS", "0.6")
        service, client = make_service(queue_limit=1, workers=1)
        first = client.submit(small_sim(rate=0.02, tag="rideout"))
        assert wait_for(lambda: client.status(first.id)["status"] == "running")
        client.submit(small_sim(rate=0.03, tag="rideout"))
        # The queue is now full; a retrying client backs off (honoring
        # Retry-After) until a slot frees and the submission lands.
        patient = ServiceClient(
            f"http://127.0.0.1:{service.port}",
            timeout=60.0,
            retries=8,
            backoff=0.2,
            backoff_max=1.0,
        )
        ticket = patient.submit(small_sim(rate=0.04))
        assert patient.wait(ticket.id, timeout=60) is not None


class TestCrashRecovery:
    """The journal's promise over the full service lifecycle, in-process.

    (The kill -9 subprocess version lives in scripts/chaos_smoke.py.)
    """

    def test_journaled_job_replays_under_its_original_id(
        self, make_service, tmp_path
    ):
        from repro.api import run_map
        from repro.service import JobJournal, canonical_response_bytes

        request = MapRequest(app="vopd", price_bandwidth=False)
        store_root = tmp_path / "store"
        store_root.mkdir(parents=True, exist_ok=True)
        # Simulate the post-crash state: an accepted record, no tombstone.
        journal = JobJournal(store_root / "journal.ndjson")
        journal.record_accepted("precrash", [request.to_dict()], batch=False)
        journal.close()

        _, client = make_service(store_root=str(store_root))
        # The pre-crash job id resolves immediately and completes.
        assert wait_for(
            lambda: client.status("precrash")["status"] == "done", timeout=60
        )
        envelope = client.status("precrash")
        assert envelope["recovered"] is True
        # Byte identity: the replayed result is exactly what a local run
        # produces (the chaos-smoke proves the same across kill -9).
        assert client.result_raw("precrash") == canonical_response_bytes(
            run_map(request)
        )

    def test_recovery_skips_finished_jobs(self, make_service, tmp_path):
        from repro.service import JobJournal

        store_root = tmp_path / "store"
        store_root.mkdir(parents=True, exist_ok=True)
        journal = JobJournal(store_root / "journal.ndjson")
        journal.record_accepted(
            "finished", [MAP_REQUEST.to_dict()], batch=False
        )
        journal.record_finished("finished")
        journal.close()
        _, client = make_service(store_root=str(store_root))
        with pytest.raises(ServiceError, match="404"):
            client.status("finished")

    def test_no_recover_starts_fresh(self, make_service, tmp_path):
        from repro.service import JobJournal

        store_root = tmp_path / "store"
        store_root.mkdir(parents=True, exist_ok=True)
        journal = JobJournal(store_root / "journal.ndjson")
        journal.record_accepted("ignored", [MAP_REQUEST.to_dict()], batch=False)
        journal.close()
        _, client = make_service(store_root=str(store_root), recover=False)
        with pytest.raises(ServiceError, match="404"):
            client.status("ignored")

    def test_health_reports_journal_counters(self, service_pair):
        _, client = service_pair
        ticket = client.submit(small_sim(rate=0.052))
        client.wait(ticket.id, timeout=60)
        journal = client.health()["journal"]
        assert journal is not None
        assert journal["accepted"] >= 1
        assert wait_for(
            lambda: client.health()["journal"]["pending"] == 0, timeout=30
        )

    def test_journal_disabled_without_store_or_path(self, make_service):
        _, client = make_service(store_root=None)
        assert client.health()["journal"] is None
