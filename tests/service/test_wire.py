"""Wire-format dispatch, canonical bytes, and error -> status mapping."""

from __future__ import annotations

import json

import pytest

from repro.api import ErrorResponse, MapRequest, SimRequest, run_map
from repro.service.wire import (
    canonical_response_bytes,
    parse_request,
    parse_response,
    status_for_error,
)
from repro.errors import ApiError


class TestParseRequest:
    def test_dispatches_map_and_sim(self):
        map_request = MapRequest(app="vopd")
        sim_request = SimRequest(map_request=map_request)
        assert parse_request(map_request.to_dict()) == map_request
        assert parse_request(sim_request.to_dict()) == sim_request

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            "map-request",
            {"kind": "map-response"},
            {"kind": "mystery"},
            {},
        ],
    )
    def test_rejects_non_requests(self, payload):
        with pytest.raises(ApiError):
            parse_request(payload)

    def test_payload_validation_errors_surface_as_api_error(self):
        payload = MapRequest(app="vopd").to_dict()
        payload["mapper"] = "no-such-mapper"
        with pytest.raises(ApiError):
            parse_request(payload)


class TestParseResponse:
    def test_round_trips_every_kind(self):
        request = MapRequest(app="vopd", price_bandwidth=False)
        map_response = run_map(request)
        error = ErrorResponse(request=request, error="FaultError", message="boom")
        for response in (map_response, error):
            assert parse_response(response.to_dict()) == response

    def test_rejects_requests_and_unknowns(self):
        with pytest.raises(ApiError):
            parse_response(MapRequest(app="vopd").to_dict())
        with pytest.raises(ApiError):
            parse_response({"kind": "nope"})


class TestCanonicalBytes:
    def test_compact_sorted_newline_terminated(self):
        request = MapRequest(app="vopd", price_bandwidth=False)
        data = canonical_response_bytes(run_map(request))
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1
        text = data.decode()
        assert ": " not in text and ", " not in text
        # Canonical means deterministic: same payload, same bytes.
        assert data == canonical_response_bytes(run_map(request))
        # And parseable back to the same typed payload.
        assert parse_response(json.loads(data)).to_dict() == run_map(request).to_dict()


class TestStatusForError:
    @pytest.mark.parametrize(
        ("error", "status"),
        [
            (None, 200),
            ("ApiError", 400),
            ("BatchError", 504),
            ("FaultError", 422),
            ("MappingError", 422),
            ("RoutingError", 422),
            ("SimulationError", 422),
            ("SolverError", 422),
            ("TypeError", 500),
            ("SomethingNovel", 500),
        ],
    )
    def test_mapping(self, error, status):
        assert status_for_error(error) == status
