"""The write-ahead journal's edge cases, crash shapes first.

Covers the satellite checklist explicitly: a torn final record (the only
kind of tear a single-``write`` append allows) is dropped with a warning
and costs exactly that record, duplicate replay of the same accepted line
is idempotent, and compaction keeps the file bounded by in-flight work
rather than total throughput.
"""

from __future__ import annotations

import json
import logging

from repro.service.journal import JobJournal


def request_payload(tag: str = "x") -> dict:
    return {"kind": "map-request", "app": "vopd", "tag": tag}


def accept(journal: JobJournal, job_id: str, tag: str = "x") -> None:
    journal.record_accepted(job_id, [request_payload(tag)], batch=False)


class TestRoundTrip:
    def test_unfinished_jobs_recover_in_order(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.ndjson", fsync=False)
        accept(journal, "a")
        accept(journal, "b")
        accept(journal, "c")
        journal.record_finished("b")
        journal.close()

        replay = JobJournal(tmp_path / "journal.ndjson")
        records = replay.recover()
        assert [record["job"] for record in records] == ["a", "c"]
        assert records[0]["requests"] == [request_payload()]
        assert records[0]["batch"] is False
        assert replay.stats()["recovered"] == 2

    def test_record_carries_client_and_priority(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.ndjson", fsync=False)
        journal.record_accepted(
            "a", [request_payload()], batch=True, client="alice", priority="high"
        )
        (record,) = JobJournal(journal.path).recover()
        assert record["client"] == "alice"
        assert record["priority"] == "high"
        assert record["batch"] is True

    def test_empty_or_missing_file_recovers_to_nothing(self, tmp_path):
        assert JobJournal(tmp_path / "absent.ndjson").recover() == []
        (tmp_path / "empty.ndjson").write_bytes(b"")
        assert JobJournal(tmp_path / "empty.ndjson").recover() == []


class TestCorruption:
    def test_torn_tail_is_dropped_with_a_warning(self, tmp_path, caplog):
        journal = JobJournal(tmp_path / "journal.ndjson", fsync=False)
        accept(journal, "whole")
        journal.close()
        # Simulate a crash mid-append: half a record, no newline.
        with open(journal.path, "ab") as handle:
            handle.write(b'deadbeef0123 {"type":"accepted","job":"to')

        replay = JobJournal(journal.path)
        with caplog.at_level(logging.WARNING, "repro.service.journal"):
            records = replay.recover()
        assert [record["job"] for record in records] == ["whole"]
        assert replay.stats()["dropped"] == 1
        assert any("dropped 1 corrupt record" in m for m in caplog.messages)

    def test_flipped_bit_costs_only_that_record(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.ndjson", fsync=False)
        accept(journal, "a")
        accept(journal, "b")
        accept(journal, "c")
        journal.close()
        lines = journal.path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1].replace(b'"job"', b'"jXb"')  # checksum now wrong
        journal.path.write_bytes(b"".join(lines))

        records = JobJournal(journal.path).recover()
        assert [record["job"] for record in records] == ["a", "c"]

    def test_unknown_record_type_is_dropped_not_fatal(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.ndjson", fsync=False)
        accept(journal, "a")
        journal._append({"type": "future-extension", "job": "a"}, durable=False)
        journal.close()
        replay = JobJournal(journal.path)
        assert [r["job"] for r in replay.recover()] == ["a"]
        assert replay.stats()["dropped"] == 1


class TestIdempotence:
    def test_duplicate_accepted_lines_replay_once(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.ndjson", fsync=False)
        accept(journal, "dup", tag="first")
        accept(journal, "dup", tag="second")
        journal.close()
        records = JobJournal(journal.path).recover()
        assert len(records) == 1
        # First record wins: replay must not resurrect a later rewrite.
        assert records[0]["requests"][0]["tag"] == "first"

    def test_tombstone_without_accepted_record_is_harmless(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.ndjson", fsync=False)
        journal.record_finished("never-accepted")
        accept(journal, "live")
        journal.close()
        records = JobJournal(journal.path).recover()
        assert [record["job"] for record in records] == ["live"]

    def test_recover_twice_is_stable(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.ndjson", fsync=False)
        accept(journal, "a")
        journal.close()
        replay = JobJournal(journal.path)
        first = replay.recover()
        second = replay.recover()
        assert first == second


class TestCompaction:
    def test_compaction_keeps_only_unfinished_records(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.ndjson", fsync=False)
        for index in range(8):
            accept(journal, f"job-{index}")
        for index in range(6):
            journal.record_finished(f"job-{index}")
        journal.compact()
        lines = [
            line for line in journal.path.read_bytes().split(b"\n") if line.strip()
        ]
        assert len(lines) == 2
        jobs = {json.loads(line.split(b" ", 1)[1])["job"] for line in lines}
        assert jobs == {"job-6", "job-7"}
        # The compacted file still recovers correctly.
        assert {
            record["job"] for record in JobJournal(journal.path).recover()
        } == {"job-6", "job-7"}

    def test_auto_compaction_bounds_the_file(self, tmp_path):
        journal = JobJournal(
            tmp_path / "journal.ndjson", fsync=False, compact_every=4
        )
        for index in range(40):
            accept(journal, f"job-{index}")
            journal.record_finished(f"job-{index}")
        journal.close()
        size = journal.path.stat().st_size
        # Without compaction this would be 80 records; the bound is the
        # compact window (< 4 accepted + 4 done records ≈ 8 lines).
        lines = [
            line for line in journal.path.read_bytes().split(b"\n") if line.strip()
        ]
        assert len(lines) <= 8, f"journal grew to {len(lines)} lines ({size} B)"
        assert journal.stats()["compactions"] >= 9

    def test_compaction_of_fully_finished_journal_empties_it(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.ndjson", fsync=False)
        accept(journal, "a")
        journal.record_finished("a")
        journal.compact()
        assert journal.path.read_bytes() == b""

    def test_appends_work_after_compaction(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.ndjson", fsync=False)
        accept(journal, "a")
        journal.compact()
        accept(journal, "b")
        journal.close()
        assert {
            record["job"] for record in JobJournal(journal.path).recover()
        } == {"a", "b"}
