"""Unit tests for :mod:`repro.graphs.commodities`."""

from __future__ import annotations

import pytest

from repro.errors import MappingError
from repro.graphs.commodities import build_commodities
from repro.mapping.base import Mapping


class TestBuildCommodities:
    def test_one_commodity_per_flow(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2, {"a": 0, "b": 1, "c": 3})
        commodities = build_commodities(tiny_graph, mapping)
        assert len(commodities) == tiny_graph.num_flows

    def test_sorted_by_decreasing_value(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2, {"a": 0, "b": 1, "c": 3})
        commodities = build_commodities(tiny_graph, mapping)
        values = [c.value for c in commodities]
        assert values == sorted(values, reverse=True)
        assert [c.index for c in commodities] == list(range(len(commodities)))

    def test_endpoints_follow_mapping(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2, {"a": 2, "b": 0, "c": 1})
        by_cores = {
            (c.src_core, c.dst_core): c for c in build_commodities(tiny_graph, mapping)
        }
        assert by_cores[("a", "b")].src_node == 2
        assert by_cores[("a", "b")].dst_node == 0
        assert by_cores[("b", "c")].dst_node == 1

    def test_values_are_bandwidths(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2, {"a": 0, "b": 1, "c": 3})
        by_cores = {
            (c.src_core, c.dst_core): c.value
            for c in build_commodities(tiny_graph, mapping)
        }
        assert by_cores == {("a", "b"): 100.0, ("b", "c"): 50.0}

    def test_unmapped_core_rejected(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2, {"a": 0, "b": 1})
        with pytest.raises(MappingError, match="not mapped"):
            build_commodities(tiny_graph, mapping)

    def test_deterministic_tie_order(self, mesh3x3):
        from repro.graphs.core_graph import CoreGraph

        graph = CoreGraph()
        graph.add_traffic("x", "y", 10.0)
        graph.add_traffic("a", "b", 10.0)  # same value: ties break by name
        mapping = Mapping(graph, mesh3x3, {"x": 0, "y": 1, "a": 2, "b": 3})
        commodities = build_commodities(graph, mapping)
        assert (commodities[0].src_core, commodities[1].src_core) == ("a", "x")
