"""Unit tests for :mod:`repro.graphs.core_graph`."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs.core_graph import CoreGraph, TrafficFlow


class TestConstruction:
    def test_empty_graph(self):
        graph = CoreGraph(name="empty")
        assert graph.num_cores == 0
        assert graph.num_flows == 0
        assert graph.total_bandwidth() == 0.0

    def test_add_core_idempotent(self):
        graph = CoreGraph()
        graph.add_core("a")
        graph.add_core("a")
        assert graph.cores == ["a"]

    def test_add_core_empty_name_rejected(self):
        with pytest.raises(GraphError, match="non-empty"):
            CoreGraph().add_core("")

    def test_add_traffic_creates_endpoints(self):
        graph = CoreGraph()
        graph.add_traffic("x", "y", 10.0)
        assert graph.has_core("x")
        assert graph.has_core("y")
        assert graph.bandwidth("x", "y") == 10.0

    def test_add_traffic_rejects_self_loop(self):
        with pytest.raises(GraphError, match="self-loop"):
            CoreGraph().add_traffic("a", "a", 5.0)

    @pytest.mark.parametrize("bandwidth", [0.0, -1.0, -100.5])
    def test_add_traffic_rejects_non_positive(self, bandwidth):
        with pytest.raises(GraphError, match="positive"):
            CoreGraph().add_traffic("a", "b", bandwidth)

    def test_parallel_edges_sum(self):
        graph = CoreGraph()
        graph.add_traffic("a", "b", 10.0)
        graph.add_traffic("a", "b", 5.0)
        assert graph.bandwidth("a", "b") == 15.0
        assert graph.num_flows == 1

    def test_from_flows_tuples(self):
        graph = CoreGraph.from_flows([("a", "b", 1.0), ("b", "c", 2.0)], name="g")
        assert graph.num_cores == 3
        assert graph.name == "g"

    def test_from_flows_objects(self):
        flows = [TrafficFlow("a", "b", 3.0)]
        graph = CoreGraph.from_flows(flows)
        assert graph.bandwidth("a", "b") == 3.0


class TestQueries:
    def test_directed_bandwidth_asymmetric(self, tiny_graph):
        assert tiny_graph.bandwidth("a", "b") == 100.0
        assert tiny_graph.bandwidth("b", "a") == 0.0

    def test_traffic_between_sums_directions(self):
        graph = CoreGraph()
        graph.add_traffic("a", "b", 10.0)
        graph.add_traffic("b", "a", 7.0)
        assert graph.traffic_between("a", "b") == 17.0
        assert graph.traffic_between("b", "a") == 17.0

    def test_core_traffic_counts_both_directions(self, tiny_graph):
        assert tiny_graph.core_traffic("b") == 150.0
        assert tiny_graph.core_traffic("a") == 100.0

    def test_core_traffic_unknown_core(self, tiny_graph):
        with pytest.raises(GraphError, match="unknown core"):
            tiny_graph.core_traffic("zzz")

    def test_neighbors_undirected(self, tiny_graph):
        assert tiny_graph.neighbors("b") == {"a", "c"}

    def test_successors_predecessors(self, tiny_graph):
        assert tiny_graph.successors("a") == {"b": 100.0}
        assert tiny_graph.predecessors("c") == {"b": 50.0}

    def test_flows_iteration(self, tiny_graph):
        flows = sorted(tiny_graph.flows())
        assert flows == [TrafficFlow("a", "b", 100.0), TrafficFlow("b", "c", 50.0)]

    def test_total_bandwidth(self, tiny_graph):
        assert tiny_graph.total_bandwidth() == 150.0

    def test_contains_and_len(self, tiny_graph):
        assert "a" in tiny_graph
        assert "zzz" not in tiny_graph
        assert len(tiny_graph) == 3

    def test_undirected_weights_collapse(self):
        graph = CoreGraph()
        graph.add_traffic("a", "b", 10.0)
        graph.add_traffic("b", "a", 5.0)
        collapsed = graph.undirected_weights()
        assert collapsed == {frozenset({"a", "b"}): 15.0}

    def test_is_connected_true(self, tiny_graph):
        assert tiny_graph.is_connected()

    def test_is_connected_false(self):
        graph = CoreGraph()
        graph.add_traffic("a", "b", 1.0)
        graph.add_core("island")
        assert not graph.is_connected()

    def test_is_connected_singleton_and_empty(self):
        assert CoreGraph().is_connected()
        graph = CoreGraph()
        graph.add_core("only")
        assert graph.is_connected()


class TestTransforms:
    def test_renamed(self, tiny_graph):
        renamed = tiny_graph.renamed({"a": "x", "b": "y", "c": "z"})
        assert renamed.bandwidth("x", "y") == 100.0
        assert not renamed.has_core("a")

    def test_renamed_missing_entry(self, tiny_graph):
        with pytest.raises(GraphError, match="missing cores"):
            tiny_graph.renamed({"a": "x"})

    def test_scaled(self, tiny_graph):
        doubled = tiny_graph.scaled(2.0)
        assert doubled.bandwidth("a", "b") == 200.0
        assert tiny_graph.bandwidth("a", "b") == 100.0  # original untouched

    def test_scaled_rejects_non_positive(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.scaled(0.0)

    def test_to_networkx(self, tiny_graph):
        nx_graph = tiny_graph.to_networkx()
        assert nx_graph.number_of_nodes() == 3
        assert nx_graph["a"]["b"]["bandwidth"] == 100.0

    def test_equality_by_structure(self):
        g1 = CoreGraph.from_flows([("a", "b", 1.0)])
        g2 = CoreGraph.from_flows([("a", "b", 1.0)])
        g3 = CoreGraph.from_flows([("a", "b", 2.0)])
        assert g1 == g2
        assert g1 != g3

    def test_repr_mentions_stats(self, tiny_graph):
        text = repr(tiny_graph)
        assert "cores=3" in text
        assert "flows=2" in text


class TestTrafficFlow:
    def test_reversed(self):
        flow = TrafficFlow("a", "b", 9.0)
        assert flow.reversed() == TrafficFlow("b", "a", 9.0)

    def test_ordering(self):
        flows = sorted([TrafficFlow("b", "c", 1.0), TrafficFlow("a", "z", 2.0)])
        assert flows[0].src == "a"
