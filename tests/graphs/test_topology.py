"""Unit tests for :mod:`repro.graphs.topology`."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs.topology import NoCTopology


class TestConstruction:
    def test_mesh_counts(self, mesh4x4):
        assert mesh4x4.num_nodes == 16
        # 2 * (3*4 + 4*3) directed links in a 4x4 mesh
        assert mesh4x4.num_links == 48

    def test_torus_counts(self, torus3x3):
        # every node has 4 neighbors on a 3x3 torus
        assert torus3x3.num_links == 36
        assert all(torus3x3.degree(node) == 4 for node in torus3x3.nodes)

    def test_1d_mesh(self):
        line = NoCTopology.mesh(4, 1)
        assert line.num_nodes == 4
        assert line.num_links == 6

    def test_2x2_torus_no_duplicate_links(self):
        # wrap links between the same node pair must not double-count
        torus = NoCTopology.torus_grid(2, 2)
        assert torus.num_links == 8

    @pytest.mark.parametrize("width,height", [(0, 3), (3, 0), (-1, 2)])
    def test_invalid_dimensions(self, width, height):
        with pytest.raises(GraphError):
            NoCTopology.mesh(width, height)

    def test_invalid_bandwidth(self):
        with pytest.raises(GraphError, match="positive"):
            NoCTopology.mesh(2, 2, link_bandwidth=0.0)

    @pytest.mark.parametrize(
        "cores,expected",
        [(1, (1, 1)), (4, (2, 2)), (6, (3, 2)), (9, (3, 3)), (14, (4, 4)), (16, (4, 4)), (65, (9, 8))],
    )
    def test_smallest_mesh_for(self, cores, expected):
        mesh = NoCTopology.smallest_mesh_for(cores)
        assert (mesh.width, mesh.height) == expected
        assert mesh.num_nodes >= cores

    def test_smallest_mesh_rejects_zero(self):
        with pytest.raises(GraphError):
            NoCTopology.smallest_mesh_for(0)


class TestGeometry:
    def test_coords_roundtrip(self, mesh4x4):
        for node in mesh4x4.nodes:
            x, y = mesh4x4.coords(node)
            assert mesh4x4.node_at(x, y) == node

    def test_node_at_out_of_range(self, mesh3x3):
        with pytest.raises(GraphError):
            mesh3x3.node_at(3, 0)

    def test_coords_out_of_range(self, mesh3x3):
        with pytest.raises(GraphError):
            mesh3x3.coords(9)

    def test_mesh_distance_is_manhattan(self, mesh4x4):
        assert mesh4x4.distance(0, 15) == 6
        assert mesh4x4.distance(0, 3) == 3
        assert mesh4x4.distance(5, 5) == 0

    def test_torus_distance_wraps(self, torus3x3):
        # (0,0) to (2,0): 1 hop across the wrap link
        assert torus3x3.distance(0, 2) == 1
        assert torus3x3.distance(0, 8) == 2

    def test_degrees_mesh(self, mesh3x3):
        corners = [0, 2, 6, 8]
        center = 4
        edges = [1, 3, 5, 7]
        assert all(mesh3x3.degree(c) == 2 for c in corners)
        assert all(mesh3x3.degree(e) == 3 for e in edges)
        assert mesh3x3.degree(center) == 4

    def test_max_degree_nodes(self, mesh3x3):
        assert mesh3x3.max_degree_nodes() == [4]

    def test_max_degree_nodes_2x3(self):
        mesh = NoCTopology.mesh(3, 2)
        assert mesh.max_degree_nodes() == [1, 4]

    def test_neighbors_are_symmetric(self, mesh4x4):
        for node in mesh4x4.nodes:
            for other in mesh4x4.neighbors(node):
                assert node in mesh4x4.neighbors(other)


class TestLinks:
    def test_uniform_bandwidth(self, mesh3x3):
        assert all(link.bandwidth == 1000.0 for link in mesh3x3.links())
        assert mesh3x3.min_link_bandwidth() == 1000.0

    def test_link_bandwidth_lookup(self, mesh3x3):
        assert mesh3x3.link_bandwidth(0, 1) == 1000.0

    def test_link_bandwidth_missing(self, mesh3x3):
        with pytest.raises(GraphError, match="no link"):
            mesh3x3.link_bandwidth(0, 8)

    def test_set_link_bandwidth(self, mesh3x3):
        mesh3x3.set_link_bandwidth(0, 1, 123.0)
        assert mesh3x3.link_bandwidth(0, 1) == 123.0
        assert mesh3x3.link_bandwidth(1, 0) == 1000.0  # directed

    def test_set_link_bandwidth_validation(self, mesh3x3):
        with pytest.raises(GraphError):
            mesh3x3.set_link_bandwidth(0, 1, -5.0)
        with pytest.raises(GraphError):
            mesh3x3.set_link_bandwidth(0, 8, 10.0)

    def test_with_uniform_bandwidth(self, mesh3x3):
        clone = mesh3x3.with_uniform_bandwidth(42.0)
        assert clone.min_link_bandwidth() == 42.0
        assert mesh3x3.min_link_bandwidth() == 1000.0

    def test_links_are_between_neighbors_only(self, mesh4x4):
        for link in mesh4x4.links():
            assert mesh4x4.distance(link.src, link.dst) == 1

    def test_has_link(self, mesh3x3):
        assert mesh3x3.has_link(0, 1)
        assert not mesh3x3.has_link(0, 4) or mesh3x3.torus

    def test_to_networkx(self, mesh2x2):
        graph = mesh2x2.to_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 8
        assert graph.nodes[3]["x"] == 1
