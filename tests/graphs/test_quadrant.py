"""Unit tests for :mod:`repro.graphs.quadrant`."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs.quadrant import (
    count_minimal_paths,
    enumerate_minimal_paths,
    quadrant_links,
    quadrant_nodes,
)
from repro.graphs.topology import NoCTopology


class TestQuadrantNodes:
    def test_rectangle(self, mesh4x4):
        # nodes 0 (0,0) and 5 (1,1): quadrant is the 2x2 box
        nodes = set(quadrant_nodes(mesh4x4, 0, 5))
        assert nodes == {0, 1, 4, 5}

    def test_full_diagonal(self, mesh4x4):
        assert set(quadrant_nodes(mesh4x4, 0, 15)) == set(range(16))

    def test_same_row(self, mesh4x4):
        assert set(quadrant_nodes(mesh4x4, 0, 3)) == {0, 1, 2, 3}

    def test_orientation_invariant(self, mesh4x4):
        assert set(quadrant_nodes(mesh4x4, 5, 0)) == set(quadrant_nodes(mesh4x4, 0, 5))

    def test_torus_takes_short_way(self, torus3x3):
        # 0 (0,0) -> 2 (2,0) wraps: quadrant is just the two nodes
        assert set(quadrant_nodes(torus3x3, 0, 2)) == {0, 2}


class TestQuadrantLinks:
    def test_links_within_box(self, mesh4x4):
        links = quadrant_links(mesh4x4, 0, 5)
        inside = {0, 1, 4, 5}
        assert links
        assert all(u in inside and v in inside for u, v in links)

    def test_monotone_links_point_toward_destination(self, mesh4x4):
        links = quadrant_links(mesh4x4, 0, 5, monotone=True)
        for u, v in links:
            assert mesh4x4.distance(v, 5) == mesh4x4.distance(u, 5) - 1

    def test_monotone_subset_of_quadrant(self, mesh4x4):
        all_links = set(quadrant_links(mesh4x4, 0, 15))
        mono = set(quadrant_links(mesh4x4, 0, 15, monotone=True))
        assert mono < all_links

    def test_same_node_rejected(self, mesh4x4):
        with pytest.raises(GraphError):
            quadrant_links(mesh4x4, 3, 3)


class TestPathEnumeration:
    @pytest.mark.parametrize(
        "src,dst,count",
        [(0, 1, 1), (0, 5, 2), (0, 15, 20), (0, 3, 1), (12, 3, 20)],
    )
    def test_count_minimal_paths(self, mesh4x4, src, dst, count):
        assert count_minimal_paths(mesh4x4, src, dst) == count

    def test_count_binomial(self):
        mesh = NoCTopology.mesh(5, 5)
        # (0,0) -> (4,4): C(8,4) = 70 paths
        assert count_minimal_paths(mesh, 0, 24) == 70

    def test_enumerate_matches_count(self, mesh4x4):
        paths = enumerate_minimal_paths(mesh4x4, 0, 15)
        assert len(paths) == 20
        assert len({tuple(p) for p in paths}) == 20

    def test_enumerated_paths_are_minimal(self, mesh4x4):
        for path in enumerate_minimal_paths(mesh4x4, 0, 15):
            assert len(path) - 1 == mesh4x4.distance(0, 15)
            assert path[0] == 0 and path[-1] == 15
            for u, v in zip(path, path[1:]):
                assert mesh4x4.has_link(u, v)

    def test_enumerate_trivial(self, mesh4x4):
        assert enumerate_minimal_paths(mesh4x4, 7, 7) == [[7]]

    def test_enumerate_limit(self, mesh4x4):
        with pytest.raises(GraphError, match="exceed limit"):
            enumerate_minimal_paths(mesh4x4, 0, 15, limit=10)

    def test_single_count_for_same_node(self, mesh4x4):
        assert count_minimal_paths(mesh4x4, 4, 4) == 1
