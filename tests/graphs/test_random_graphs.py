"""Unit tests for the LEDA-substitute random core-graph generator."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs.random_graphs import random_core_graph, random_graph_suite


class TestRandomCoreGraph:
    def test_size(self):
        graph = random_core_graph(25, seed=1)
        assert graph.num_cores == 25

    def test_connected(self):
        for seed in range(5):
            assert random_core_graph(30, seed=seed).is_connected()

    def test_deterministic_per_seed(self):
        assert random_core_graph(20, seed=7) == random_core_graph(20, seed=7)

    def test_different_seeds_differ(self):
        assert random_core_graph(20, seed=7) != random_core_graph(20, seed=8)

    def test_bandwidths_in_range(self):
        graph = random_core_graph(40, seed=3, bandwidth_range=(16.0, 800.0))
        for flow in graph.flows():
            assert 1.0 <= flow.bandwidth <= 800.0

    def test_edge_count_scales(self):
        graph = random_core_graph(30, seed=2, extra_edge_factor=2.0)
        # spanning tree (29) + ~60 extras
        assert graph.num_flows >= 29
        assert graph.num_flows <= 29 + 60

    def test_zero_extra_edges(self):
        graph = random_core_graph(10, seed=1, extra_edge_factor=0.0)
        assert graph.num_flows == 9  # just the spanning tree

    @pytest.mark.parametrize("cores", [0, 1])
    def test_too_small(self, cores):
        with pytest.raises(GraphError):
            random_core_graph(cores, seed=1)

    def test_bad_bandwidth_range(self):
        with pytest.raises(GraphError):
            random_core_graph(5, seed=1, bandwidth_range=(100.0, 10.0))

    def test_negative_extra_factor(self):
        with pytest.raises(GraphError):
            random_core_graph(5, seed=1, extra_edge_factor=-1.0)

    def test_no_self_loops(self):
        graph = random_core_graph(50, seed=11)
        assert all(flow.src != flow.dst for flow in graph.flows())


class TestSuite:
    def test_paper_sizes(self):
        suite = random_graph_suite()
        assert [g.num_cores for g in suite] == [25, 35, 45, 55, 65]

    def test_suite_reproducible(self):
        a = random_graph_suite(sizes=(10, 12), seed=5)
        b = random_graph_suite(sizes=(10, 12), seed=5)
        assert a[0] == b[0] and a[1] == b[1]

    def test_suite_names(self):
        (graph,) = random_graph_suite(sizes=(10,), seed=5)
        assert "random-10" in graph.name
