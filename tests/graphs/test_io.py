"""Unit tests for graph serialization (JSON and DOT)."""

from __future__ import annotations

import json

import pytest

from repro.errors import GraphError
from repro.graphs.io import (
    core_graph_from_dict,
    core_graph_to_dict,
    core_graph_to_dot,
    load_core_graph,
    mapping_to_dot,
    save_core_graph,
    topology_from_dict,
    topology_to_dict,
)
from repro.graphs.topology import NoCTopology


class TestCoreGraphJson:
    def test_roundtrip_dict(self, tiny_graph):
        payload = core_graph_to_dict(tiny_graph)
        assert core_graph_from_dict(payload) == tiny_graph

    def test_roundtrip_file(self, tiny_graph, tmp_path):
        path = tmp_path / "graph.json"
        save_core_graph(tiny_graph, path)
        loaded = load_core_graph(path)
        assert loaded == tiny_graph
        assert loaded.name == "tiny"

    def test_isolated_cores_preserved(self, tmp_path):
        from repro.graphs.core_graph import CoreGraph

        graph = CoreGraph(name="iso")
        graph.add_traffic("a", "b", 1.0)
        graph.add_core("island")
        path = tmp_path / "iso.json"
        save_core_graph(graph, path)
        assert load_core_graph(path).has_core("island")

    def test_wrong_kind_rejected(self):
        with pytest.raises(GraphError, match="kind"):
            core_graph_from_dict({"kind": "something-else", "schema": 1})

    def test_wrong_schema_rejected(self):
        with pytest.raises(GraphError, match="schema"):
            core_graph_from_dict({"kind": "core-graph", "schema": 99})

    def test_missing_flow_field(self):
        payload = {
            "kind": "core-graph",
            "schema": 1,
            "cores": ["a", "b"],
            "flows": [{"src": "a", "bandwidth": 1.0}],
        }
        with pytest.raises(GraphError, match="missing field"):
            core_graph_from_dict(payload)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(GraphError, match="invalid JSON"):
            load_core_graph(path)

    def test_file_is_valid_json(self, tiny_graph, tmp_path):
        path = tmp_path / "graph.json"
        save_core_graph(tiny_graph, path)
        payload = json.loads(path.read_text())
        assert payload["kind"] == "core-graph"


class TestTopologyJson:
    def test_roundtrip(self, mesh3x3):
        mesh3x3.set_link_bandwidth(0, 1, 77.0)
        clone = topology_from_dict(topology_to_dict(mesh3x3))
        assert clone.width == 3 and clone.height == 3
        assert clone.link_bandwidth(0, 1) == 77.0
        assert clone.link_bandwidth(1, 0) == 1000.0

    def test_torus_flag_preserved(self, torus3x3):
        clone = topology_from_dict(topology_to_dict(torus3x3))
        assert clone.torus

    def test_wrong_kind(self):
        with pytest.raises(GraphError):
            topology_from_dict({"kind": "core-graph", "schema": 1})


class TestDot:
    def test_core_graph_dot(self, tiny_graph):
        dot = core_graph_to_dot(tiny_graph)
        assert dot.startswith('digraph "tiny"')
        assert '"a" -> "b" [label="100"]' in dot

    def test_mapping_dot(self, mesh2x2):
        dot = mapping_to_dot(mesh2x2, {0: "cpu", 1: None, 2: "mem", 3: None})
        assert "cpu" in dot
        assert "(empty)" in dot
        assert dot.count("->") >= 4
