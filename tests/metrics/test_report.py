"""Unit tests for the one-stop mapping report."""

from __future__ import annotations

import pytest

from repro.errors import MappingError
from repro.mapping.base import Mapping
from repro.metrics.report import evaluate_mapping


@pytest.fixture
def vopd_report(mesh4x4):
    from repro.apps import vopd
    from repro.mapping import nmap_single_path

    app = vopd()
    mesh = mesh4x4.with_uniform_bandwidth(10000.0)
    mapping = nmap_single_path(app, mesh).mapping
    return evaluate_mapping(mapping)


class TestEvaluateMapping:
    def test_metrics_consistent(self, vopd_report):
        report = vopd_report
        assert report.comm_cost > 0
        assert report.avg_hops == pytest.approx(report.comm_cost / 4028.0)
        # bandwidth ordering mirrors Figure 4
        assert report.min_bw_split_all_paths <= report.min_bw_split_min_paths + 1e-6
        assert report.min_bw_split_min_paths <= report.min_bw_min_path + 1e-6

    def test_split_saving_factor(self, vopd_report):
        assert vopd_report.split_saving_factor == pytest.approx(
            vopd_report.min_bw_min_path / vopd_report.min_bw_split_all_paths
        )
        assert vopd_report.split_saving_factor > 1.0

    def test_table_overhead_under_claim(self, vopd_report):
        assert 0.0 < vopd_report.table_overhead_ratio < 0.10

    def test_xy_deadlock_free(self, vopd_report):
        assert vopd_report.xy_deadlock_free

    def test_render_mentions_everything(self, vopd_report):
        text = vopd_report.render()
        for fragment in ("comm cost", "min BW", "energy", "deadlock", "4x4 mesh"):
            assert fragment in text

    def test_incomplete_mapping_rejected(self, tiny_graph, mesh2x2):
        with pytest.raises(MappingError):
            evaluate_mapping(Mapping(tiny_graph, mesh2x2, {"a": 0}))

    def test_energy_positive(self, vopd_report):
        assert vopd_report.energy_mw > 0
