"""Unit tests for the Hu-Marculescu bit-energy model."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.mapping.base import Mapping
from repro.metrics.energy import BitEnergyModel, communication_energy


class TestBitEnergyModel:
    def test_path_energy(self):
        model = BitEnergyModel(link_pj_per_bit=1.0, router_pj_per_bit=2.0)
        assert model.path_energy_pj(0) == 2.0  # one router, no link
        assert model.path_energy_pj(2) == 2.0 + 6.0

    def test_negative_hops_rejected(self):
        with pytest.raises(ReproError):
            BitEnergyModel().path_energy_pj(-1)


class TestCommunicationEnergy:
    def test_scales_with_distance(self, tiny_graph, mesh3x3):
        near = Mapping(tiny_graph, mesh3x3, {"a": 0, "b": 1, "c": 2})
        far = Mapping(tiny_graph, mesh3x3, {"a": 0, "b": 8, "c": 2})
        assert communication_energy(far) > communication_energy(near)

    def test_hand_computed(self, mesh3x3):
        from repro.graphs.core_graph import CoreGraph

        graph = CoreGraph()
        graph.add_traffic("a", "b", 1.0)  # 1 MB/s = 8e6 bit/s
        mapping = Mapping(graph, mesh3x3, {"a": 0, "b": 1})
        model = BitEnergyModel(link_pj_per_bit=1.0, router_pj_per_bit=1.0)
        # 8e6 bit/s * (1*1 + 2*1) pJ = 24e6 pJ/s = 0.024 mW
        assert communication_energy(mapping, model) == pytest.approx(0.024)

    def test_energy_follows_cost_with_uniform_params(self, square_graph, mesh3x3):
        from repro.metrics.comm_cost import comm_cost

        m1 = Mapping(square_graph, mesh3x3, {"a": 0, "b": 1, "c": 4, "d": 3})
        m2 = Mapping(square_graph, mesh3x3, {"a": 0, "b": 8, "c": 4, "d": 2})
        assert (comm_cost(m1) < comm_cost(m2)) == (
            communication_energy(m1) < communication_energy(m2)
        )
