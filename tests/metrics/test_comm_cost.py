"""Unit tests for Equation 7 and the swap delta."""

from __future__ import annotations

import itertools

import pytest

from repro.mapping.base import Mapping
from repro.metrics.comm_cost import (
    average_hop_count,
    comm_cost,
    comm_cost_limit,
    swap_cost_delta,
)


class TestCommCost:
    def test_hand_computed(self, tiny_graph, mesh2x2):
        # a@0, b@3 (distance 2), c@1 (distance 1 from b)
        mapping = Mapping(tiny_graph, mesh2x2, {"a": 0, "b": 3, "c": 1})
        assert comm_cost(mapping) == 100.0 * 2 + 50.0 * 1

    def test_zero_for_no_flows(self, mesh2x2):
        from repro.graphs.core_graph import CoreGraph

        graph = CoreGraph()
        graph.add_core("a")
        mapping = Mapping(graph, mesh2x2, {"a": 0})
        assert comm_cost(mapping) == 0.0

    def test_average_hop_count(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2, {"a": 0, "b": 3, "c": 1})
        # (100*2 + 50*1) / 150
        assert average_hop_count(mapping) == pytest.approx(250.0 / 150.0)

    def test_average_hop_empty(self, mesh2x2):
        from repro.graphs.core_graph import CoreGraph

        graph = CoreGraph()
        graph.add_core("a")
        mapping = Mapping(graph, mesh2x2, {"a": 0})
        assert average_hop_count(mapping) == 0.0

    def test_limit_early_exit(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2, {"a": 0, "b": 3, "c": 1})
        assert comm_cost_limit(mapping, limit=1e9) == comm_cost(mapping)
        assert comm_cost_limit(mapping, limit=10.0) > 10.0


class TestSwapDelta:
    def test_matches_full_recompute(self, square_graph, mesh3x3):
        mapping = Mapping(
            square_graph, mesh3x3, {"a": 0, "b": 4, "c": 8, "d": 2}
        )
        base = comm_cost(mapping)
        for x, y in itertools.combinations(range(9), 2):
            delta = swap_cost_delta(mapping, x, y)
            assert delta == pytest.approx(comm_cost(mapping.swapped(x, y)) - base)

    def test_empty_empty_swap_is_zero(self, tiny_graph, mesh3x3):
        mapping = Mapping(tiny_graph, mesh3x3, {"a": 0, "b": 1, "c": 2})
        assert swap_cost_delta(mapping, 5, 8) == 0.0

    def test_core_to_empty_move(self, tiny_graph, mesh3x3):
        mapping = Mapping(tiny_graph, mesh3x3, {"a": 0, "b": 1, "c": 2})
        delta = swap_cost_delta(mapping, 0, 8)  # move "a" far away
        expected = comm_cost(mapping.swapped(0, 8)) - comm_cost(mapping)
        assert delta == pytest.approx(expected)

    def test_swapped_pair_edge_unchanged(self, mesh3x3):
        from repro.graphs.core_graph import CoreGraph

        graph = CoreGraph()
        graph.add_traffic("a", "b", 100.0)
        mapping = Mapping(graph, mesh3x3, {"a": 0, "b": 1})
        # swapping the two endpoints leaves their distance unchanged
        assert swap_cost_delta(mapping, 0, 1) == 0.0
