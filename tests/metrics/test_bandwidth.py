"""Unit tests for the minimum-bandwidth metrics (Figure 4's quantities)."""

from __future__ import annotations

import pytest

from repro.graphs.core_graph import CoreGraph
from repro.mapping.base import Mapping
from repro.metrics.bandwidth import (
    link_utilizations,
    min_bandwidth_min_path,
    min_bandwidth_split,
    min_bandwidth_xy,
)


@pytest.fixture
def hot_pair_mapping(mesh3x3):
    graph = CoreGraph()
    graph.add_traffic("a", "b", 600.0)
    # distance-2 placement with two disjoint min paths
    return Mapping(graph, mesh3x3, {"a": 0, "b": 4})


class TestMinBandwidth:
    def test_xy_single_route(self, hot_pair_mapping):
        bw, routing = min_bandwidth_xy(hot_pair_mapping)
        assert bw == 600.0
        assert routing.paths[0] == [0, 1, 4]

    def test_min_path_equals_xy_single_flow(self, hot_pair_mapping):
        bw, _ = min_bandwidth_min_path(hot_pair_mapping)
        assert bw == 600.0  # one flow cannot be split by a single-path router

    def test_split_halves(self, hot_pair_mapping):
        bw, routing = min_bandwidth_split(hot_pair_mapping, quadrant_only=True)
        assert bw == pytest.approx(300.0)
        assert routing.max_link_load() == pytest.approx(300.0)

    def test_split_all_paths_at_most_quadrant(self, hot_pair_mapping):
        bw_tm, _ = min_bandwidth_split(hot_pair_mapping, quadrant_only=True)
        bw_ta, _ = min_bandwidth_split(hot_pair_mapping, quadrant_only=False)
        assert bw_ta <= bw_tm + 1e-9

    def test_ordering_chain(self, mesh4x4):
        """The Figure 4 ordering: split <= min-path <= XY for one mapping."""
        from repro.apps import vopd
        from repro.mapping import nmap_single_path

        app = vopd()
        result = nmap_single_path(app, mesh4x4.with_uniform_bandwidth(10000.0))
        xy, _ = min_bandwidth_xy(result.mapping)
        mp, _ = min_bandwidth_min_path(result.mapping)
        tm, _ = min_bandwidth_split(result.mapping, quadrant_only=True)
        ta, _ = min_bandwidth_split(result.mapping, quadrant_only=False)
        assert ta <= tm + 1e-6
        assert tm <= mp + 1e-6
        assert mp <= xy + 1e-6


class TestUtilization:
    def test_values(self, hot_pair_mapping):
        _bw, routing = min_bandwidth_xy(hot_pair_mapping)
        utils = link_utilizations(routing)
        assert utils[(0, 1)] == pytest.approx(0.6)  # 600 over 1000 capacity
        assert utils[(1, 4)] == pytest.approx(0.6)
