"""Tests for the application suite (core counts, figures' numbers, registry)."""

from __future__ import annotations

import pytest

from repro.apps import VIDEO_APPS, all_apps, dsd, dsp_filter, get_app, mpeg4, mwa, mwag, pip, vopd
from repro.apps.dsp import dsp_mesh
from repro.errors import GraphError


class TestCoreCounts:
    """§7.1 names the core count of every application."""

    @pytest.mark.parametrize(
        "factory,count",
        [(mpeg4, 14), (vopd, 16), (pip, 8), (mwa, 14), (mwag, 16), (dsd, 16), (dsp_filter, 6)],
    )
    def test_counts_match_paper(self, factory, count):
        assert factory().num_cores == count


class TestVopd:
    def test_figure1_bandwidth_multiset(self):
        """Edge weights must be exactly the numbers printed in Figure 1."""
        weights = sorted(flow.bandwidth for flow in vopd().flows())
        expected = sorted(
            [70, 362, 362, 362, 357, 353, 300, 313, 313, 313, 500, 94, 157, 27, 49]
            + [16] * 6
        )
        assert weights == [float(w) for w in expected]

    def test_total_bandwidth(self):
        assert vopd().total_bandwidth() == pytest.approx(4028.0)

    def test_connected(self):
        assert vopd().is_connected()

    def test_pipeline_backbone(self):
        graph = vopd()
        assert graph.bandwidth("run_le_dec", "inv_scan") == 362.0
        assert graph.bandwidth("ref_mem", "up_samp") == 500.0
        assert graph.bandwidth("stripe_mem", "acdc_pred") == 27.0


class TestDsp:
    def test_figure5a_weights(self):
        weights = sorted(flow.bandwidth for flow in dsp_filter().flows())
        assert weights == [200.0] * 6 + [600.0] * 2

    def test_heavy_pair_is_filter_ifft(self):
        graph = dsp_filter()
        assert graph.bandwidth("filter", "ifft") == 600.0
        assert graph.bandwidth("ifft", "filter") == 600.0

    def test_mesh_is_2x3(self):
        mesh = dsp_mesh()
        assert (mesh.width, mesh.height) == (3, 2)
        assert mesh.num_nodes == 6


class TestSuiteWide:
    def test_all_connected(self):
        for name, app in all_apps().items():
            assert app.is_connected(), name

    def test_all_positive_bandwidths(self):
        for app in all_apps().values():
            assert all(flow.bandwidth > 0 for flow in app.flows())

    def test_all_fit_smallest_mesh(self):
        from repro.graphs.topology import NoCTopology

        for app in all_apps().values():
            mesh = NoCTopology.smallest_mesh_for(app.num_cores)
            assert mesh.num_nodes >= app.num_cores

    def test_video_apps_order(self):
        assert VIDEO_APPS == ("mpeg4", "vopd", "pip", "mwa", "mwag", "dsd")

    def test_names_match_registry(self):
        for name in VIDEO_APPS:
            assert get_app(name).name == name

    def test_factories_return_fresh_objects(self):
        a, b = vopd(), vopd()
        assert a == b
        assert a is not b

    def test_unknown_app(self):
        with pytest.raises(GraphError, match="unknown application"):
            get_app("doom")

    def test_mwag_extends_mwa(self):
        base, extended = mwa(), mwag()
        for flow in base.flows():
            assert extended.bandwidth(flow.src, flow.dst) == flow.bandwidth
        assert extended.num_cores == base.num_cores + 2

    def test_dsd_two_symmetric_pipelines(self):
        graph = dsd()
        assert graph.bandwidth("split", "mem_a") == graph.bandwidth("split", "mem_b")
        assert graph.bandwidth("mix_a", "dmem_a") == graph.bandwidth("mix_b", "dmem_b")

    def test_mpeg4_sdram_is_hub(self):
        graph = mpeg4()
        sdram_traffic = graph.core_traffic("sdram")
        assert sdram_traffic > 0.4 * graph.total_bandwidth()
