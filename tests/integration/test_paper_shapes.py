"""Integration tests asserting the paper's headline shapes (DESIGN.md §5).

These are the claims a reproduction must preserve, checked end to end:
NMAP/PBB beat PMAP/GMAP on cost, splitting roughly halves bandwidth needs,
NMAP's advantage over PBB grows with scale, the DSP design needs 600 MB/s
single-path, and split-routing latency rises more gently than single-path.
"""

from __future__ import annotations

import pytest

from repro.apps import VIDEO_APPS, get_app
from repro.apps.dsp import dsp_filter, dsp_mesh
from repro.graphs.commodities import build_commodities
from repro.graphs.random_graphs import random_core_graph
from repro.graphs.topology import NoCTopology
from repro.mapping import gmap, nmap_single_path, pbb, pmap
from repro.metrics import min_bandwidth_min_path, min_bandwidth_split
from repro.routing.min_path import min_path_routing


def _mesh_for(app):
    return NoCTopology.smallest_mesh_for(app.num_cores, link_bandwidth=app.total_bandwidth())


class TestFig3Shape:
    @pytest.mark.parametrize("app_name", VIDEO_APPS)
    def test_nmap_never_loses_to_pmap(self, app_name):
        app = get_app(app_name)
        mesh = _mesh_for(app)
        assert nmap_single_path(app, mesh).comm_cost <= pmap(app, mesh).comm_cost

    @pytest.mark.parametrize("app_name", VIDEO_APPS)
    def test_nmap_close_to_or_better_than_gmap(self, app_name):
        app = get_app(app_name)
        mesh = _mesh_for(app)
        nmap_cost = nmap_single_path(app, mesh).comm_cost
        gmap_cost = gmap(app, mesh).comm_cost
        assert nmap_cost <= gmap_cost * 1.05  # NMAP within 5% or better

    def test_pbb_comparable_to_nmap_on_small_apps(self):
        """The paper: 'for small number of cores, PBB gives good performance,
        comparable to NMAP'."""
        app = get_app("vopd")
        mesh = _mesh_for(app)
        nmap_cost = nmap_single_path(app, mesh).comm_cost
        pbb_cost = pbb(app, mesh, max_queue=1000).comm_cost
        assert 0.8 <= pbb_cost / nmap_cost <= 1.2


class TestFig4Shape:
    @pytest.mark.parametrize("app_name", VIDEO_APPS)
    def test_splitting_reduces_bandwidth(self, app_name):
        app = get_app(app_name)
        mesh = _mesh_for(app)
        mapping = nmap_single_path(app, mesh).mapping
        single_bw, _ = min_bandwidth_min_path(mapping)
        split_bw, _ = min_bandwidth_split(mapping, quadrant_only=False)
        assert split_bw <= single_bw + 1e-6

    def test_average_bandwidth_saving_near_2x(self):
        """Table 1: bwr averages ~2.13 in the paper."""
        ratios = []
        for app_name in VIDEO_APPS:
            app = get_app(app_name)
            mesh = _mesh_for(app)
            mapping = nmap_single_path(app, mesh).mapping
            single_bw, _ = min_bandwidth_min_path(mapping)
            split_bw, _ = min_bandwidth_split(mapping, quadrant_only=False)
            ratios.append(single_bw / split_bw)
        average = sum(ratios) / len(ratios)
        assert average >= 1.5  # at least ~2x-ish class savings


class TestTable2Shape:
    def test_nmap_advantage_grows_with_cores(self):
        ratios = {}
        for size in (15, 45):
            app = random_core_graph(size, seed=2004 + size)
            mesh = NoCTopology.smallest_mesh_for(size, link_bandwidth=app.total_bandwidth())
            pbb_cost = pbb(app, mesh, max_queue=200).comm_cost
            nmap_cost = nmap_single_path(app, mesh).comm_cost
            ratios[size] = pbb_cost / nmap_cost
        assert ratios[45] > ratios[15] * 0.99  # growth (allow tiny noise)
        assert ratios[45] > 1.1


class TestTable3Shape:
    def test_minp_bandwidth_is_600(self):
        app = dsp_filter()
        mesh = dsp_mesh(link_bandwidth=app.total_bandwidth())
        mapping = nmap_single_path(app, mesh).mapping
        commodities = build_commodities(app, mapping)
        routing = min_path_routing(mesh, commodities)
        assert routing.max_link_load() == pytest.approx(600.0)

    def test_split_bandwidth_reaches_400(self):
        """400 MB/s is optimal on the 2x3 mesh (EXPERIMENTS.md cut argument)."""
        from repro.mapping import nmap_with_splitting

        app = dsp_filter()
        result = nmap_with_splitting(
            app, dsp_mesh(link_bandwidth=400.0), quadrant_only=False
        )
        assert result.feasible


class TestFig5cShape:
    def test_split_flattens_latency_growth(self):
        """Single-path latency grows more than split when bandwidth drops."""
        from repro.routing.split import solve_min_congestion
        from repro.simnoc import SimConfig, simulate_mapping

        app = dsp_filter()
        mesh = dsp_mesh(link_bandwidth=500.0)
        from repro.mapping import nmap_with_splitting

        mapped = nmap_with_splitting(app, mesh, quadrant_only=True)
        commodities = build_commodities(app, mapped.mapping)
        single = min_path_routing(mesh, commodities)
        _lam, split = solve_min_congestion(mesh, commodities, quadrant_only=True)

        def mean_latency(routing, gbps):
            means = []
            for seed in (1, 2):
                config = SimConfig(
                    mean_burst_packets=2.0,
                    buffer_depth=16,
                    measure_cycles=12_000,
                    seed=seed,
                )
                report = simulate_mapping(
                    mesh,
                    commodities,
                    routing,
                    config,
                    link_rate_flits_per_cycle=config.gbps_link_rate(gbps),
                )
                means.append(report.stats.mean)
            return sum(means) / len(means)

        growth_single = mean_latency(single, 1.1) - mean_latency(single, 1.8)
        growth_split = mean_latency(split, 1.1) - mean_latency(split, 1.8)
        assert growth_single > growth_split
