"""Shared fixtures: small graphs and meshes used across the suite."""

from __future__ import annotations

import pytest

from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology


@pytest.fixture
def tiny_graph() -> CoreGraph:
    """Three cores in a line: a -100-> b -50-> c."""
    graph = CoreGraph(name="tiny")
    graph.add_traffic("a", "b", 100.0)
    graph.add_traffic("b", "c", 50.0)
    return graph


@pytest.fixture
def square_graph() -> CoreGraph:
    """Four cores in a weighted cycle (unique optimal placement shape)."""
    graph = CoreGraph(name="square")
    graph.add_traffic("a", "b", 100.0)
    graph.add_traffic("b", "c", 80.0)
    graph.add_traffic("c", "d", 60.0)
    graph.add_traffic("d", "a", 40.0)
    return graph


@pytest.fixture
def mesh2x2() -> NoCTopology:
    return NoCTopology.mesh(2, 2, link_bandwidth=1000.0)


@pytest.fixture
def mesh3x3() -> NoCTopology:
    return NoCTopology.mesh(3, 3, link_bandwidth=1000.0)


@pytest.fixture
def mesh4x4() -> NoCTopology:
    return NoCTopology.mesh(4, 4, link_bandwidth=1000.0)


@pytest.fixture
def torus3x3() -> NoCTopology:
    return NoCTopology.torus_grid(3, 3, link_bandwidth=1000.0)
