"""CLI tests (argument handling and end-to-end subcommands)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestListApps:
    def test_lists_all(self, capsys):
        assert main(["list-apps"]) == 0
        out = capsys.readouterr().out
        for name in ("vopd", "mpeg4", "dsp", "pip"):
            assert name in out


class TestMap:
    def test_map_builtin_app(self, capsys):
        assert main(["map", "--app", "dsp"]) == 0
        out = capsys.readouterr().out
        assert "comm cost" in out
        assert "filter" in out

    def test_map_explicit_mesh(self, capsys):
        assert main(["map", "--app", "pip", "--mesh", "4x2"]) == 0
        assert "4x2" in capsys.readouterr().out

    def test_map_bad_mesh(self, capsys):
        assert main(["map", "--app", "pip", "--mesh", "banana"]) == 2
        assert "error" in capsys.readouterr().err

    def test_map_unknown_app(self, capsys):
        assert main(["map", "--app", "nonexistent"]) == 2

    def test_map_writes_json_and_dot(self, tmp_path, capsys):
        out_json = tmp_path / "mapping.json"
        out_dot = tmp_path / "mapping.dot"
        code = main(
            [
                "map", "--app", "dsp",
                "--out-json", str(out_json),
                "--out-dot", str(out_dot),
            ]
        )
        assert code == 0
        payload = json.loads(out_json.read_text())
        assert payload["kind"] == "map-response"
        assert payload["app_name"] == "dsp"
        assert len(payload["placement"]) == 6
        assert "digraph" in out_dot.read_text()

    def test_map_from_json_file(self, tmp_path, capsys, tiny_graph):
        from repro.graphs.io import save_core_graph

        path = tmp_path / "custom.json"
        save_core_graph(tiny_graph, path)
        assert main(["map", "--app", str(path)]) == 0
        assert "tiny" in capsys.readouterr().out

    @pytest.mark.parametrize("algorithm", ["pmap", "gmap", "pbb", "nmap-ta"])
    def test_algorithms(self, algorithm, capsys):
        assert main(["map", "--app", "pip", "--algorithm", algorithm]) == 0


    def test_map_torus_topology(self, capsys):
        assert main(["map", "--app", "vopd", "--topology", "torus:4x4"]) == 0
        out = capsys.readouterr().out
        assert "torus:4x4" in out
        assert "feasible    : True" in out

    def test_map_rejects_topology_plus_mesh(self, capsys):
        code = main(["map", "--app", "pip", "--topology", "mesh:4x4", "--mesh", "4x4"])
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_map_seed_rejected_for_deterministic(self, capsys):
        assert main(["map", "--app", "pip", "--algorithm", "pmap", "--seed", "3"]) == 2
        assert "deterministic" in capsys.readouterr().err

    def test_map_seed_for_annealing(self, capsys):
        assert main(
            ["map", "--app", "pip", "--algorithm", "annealing", "--seed", "3"]
        ) == 0

    def test_mapper_opt(self, capsys):
        assert main(
            ["map", "--app", "pip", "--algorithm", "pbb",
             "--mapper-opt", "max_queue=50"]
        ) == 0

    def test_mapper_opt_unknown_key(self, capsys):
        code = main(
            ["map", "--app", "pip", "--algorithm", "pbb", "--mapper-opt", "queue=50"]
        )
        assert code == 2
        assert "unknown" in capsys.readouterr().err

    def test_mapper_opt_mistyped_value(self, capsys):
        code = main(
            ["map", "--app", "pip", "--algorithm", "annealing",
             "--mapper-opt", "cooling=fast"]
        )
        assert code == 2
        assert "cooling" in capsys.readouterr().err

    def test_out_json_is_map_response(self, tmp_path):
        from repro.api import MapResponse

        out_json = tmp_path / "response.json"
        assert main(
            ["map", "--app", "pip", "--topology", "torus:3x3",
             "--out-json", str(out_json)]
        ) == 0
        response = MapResponse.from_dict(json.loads(out_json.read_text()))
        assert response.topology.kind == "torus"
        assert response.feasible


class TestListMappers:
    def test_lists_all_advertised(self, capsys):
        assert main(["list-mappers"]) == 0
        out = capsys.readouterr().out
        for name in ("nmap", "nmap-tm", "nmap-ta", "pmap", "gmap", "pbb", "annealing", "hmap"):
            assert name in out
        assert "cooling" in out  # options are shown


class TestPartition:
    def test_partition_summary(self, capsys):
        assert main(["partition", "--topology", "mesh:8x8", "--shards", "4"]) == 0
        out = capsys.readouterr().out
        assert "shards      : 4" in out
        assert "edge cut" in out
        assert "balance" in out

    def test_partition_json_round_trips(self, capsys):
        from repro.partition import PartitionSpec

        assert (
            main([
                "partition", "--topology", "torus:4x4",
                "--shards", "2", "--method", "round-robin", "--json",
            ])
            == 0
        )
        spec = PartitionSpec.from_dict(json.loads(capsys.readouterr().out))
        assert spec.num_shards == 2
        assert spec.method == "round-robin"

    def test_partition_out_json(self, tmp_path, capsys):
        target = tmp_path / "spec.json"
        assert (
            main([
                "partition", "--topology", "mesh:4x4",
                "--shards", "2", "--out-json", str(target),
            ])
            == 0
        )
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(target.read_text())
        assert payload["num_shards"] == 2

    def test_partition_rejects_auto_topology(self, capsys):
        assert main(["partition", "--topology", "auto", "--shards", "2"]) == 2
        assert "explicit dimensions" in capsys.readouterr().err

    def test_partition_unknown_method(self, capsys):
        assert (
            main([
                "partition", "--topology", "mesh:4x4",
                "--shards", "2", "--method", "kl",
            ])
            == 2
        )
        assert "unknown partitioner" in capsys.readouterr().err

    def test_list_engines_shows_partitioners(self, capsys):
        assert main(["list-engines"]) == 0
        out = capsys.readouterr().out
        assert "sharded" in out
        for name in ("metis", "greedy-edge", "round-robin"):
            assert name in out


class TestSimulate:
    def test_simulate_dsp(self, capsys):
        assert main(["simulate", "--app", "dsp", "--cycles", "3000"]) == 0
        out = capsys.readouterr().out
        assert "latency mean" in out
        assert "hottest link" in out

    def test_simulate_torus(self, capsys):
        assert main(
            ["simulate", "--app", "pip", "--topology", "torus:3x3",
             "--cycles", "2000", "--sim-seed", "2"]
        ) == 0
        assert "latency mean" in capsys.readouterr().out

    @pytest.mark.parametrize("engine", ["event", "vector", "auto"])
    def test_simulate_fast_engines_match_cycle(self, engine, capsys):
        assert main(["simulate", "--app", "dsp", "--cycles", "2000",
                     "--engine", "cycle"]) == 0
        cycle_out = capsys.readouterr().out
        assert main(["simulate", "--app", "dsp", "--cycles", "2000",
                     "--engine", engine]) == 0
        fast_out = capsys.readouterr().out
        # Identical numbers, different engine banner.
        assert cycle_out.splitlines()[1:] == fast_out.splitlines()[1:]
        assert f"{engine} / trace" in fast_out

    def test_simulate_vector_engine_at_high_load(self, capsys):
        assert main(
            ["simulate", "--app", "vopd", "--cycles", "2000",
             "--traffic", "uniform", "--injection-rate", "0.25",
             "--engine", "vector"]
        ) == 0
        out = capsys.readouterr().out
        assert "vector / uniform @ 0.25" in out
        assert "worst flow" in out

    def test_simulate_rejects_unknown_engine(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--app", "dsp", "--engine", "warp"])
        assert "--engine" in capsys.readouterr().err

    def test_simulate_synthetic_traffic_with_vcs(self, capsys):
        assert main(
            ["simulate", "--app", "vopd", "--cycles", "2000",
             "--traffic", "uniform", "--injection-rate", "0.05",
             "--engine", "event", "--vcs", "2", "--vc-depth", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "uniform @ 0.05" in out
        assert "2 VCs" in out
        assert "worst flow" in out

    def test_simulate_synthetic_requires_rate(self, capsys):
        assert main(
            ["simulate", "--app", "dsp", "--cycles", "2000",
             "--traffic", "uniform"]
        ) == 2
        assert "injection_rate" in capsys.readouterr().err

    def test_simulate_out_json_round_trips(self, tmp_path):
        out_path = tmp_path / "sim.json"
        assert main(
            ["simulate", "--app", "dsp", "--cycles", "2000",
             "--engine", "event", "--out-json", str(out_path)]
        ) == 0
        from repro.api import SimResponse

        payload = json.loads(out_path.read_text())
        response = SimResponse.from_dict(payload)
        assert response.per_flow
        assert response.request.options.engine == "event"


class TestDesign:
    def test_design_prints_netlist(self, capsys):
        assert main(["design", "--app", "dsp"]) == 0
        out = capsys.readouterr().out
        assert "SC_MODULE" in out
        assert "total_area_mm2" in out

    def test_design_writes_file(self, tmp_path, capsys):
        out = tmp_path / "noc.cpp"
        assert main(["design", "--app", "dsp", "--out", str(out)]) == 0
        assert "xpipes_switch" in out.read_text()


class TestCompare:
    def test_compare_table(self, capsys):
        assert main(["compare", "--app", "pip", "--algorithms", "gmap", "nmap"]) == 0
        out = capsys.readouterr().out
        assert "gmap" in out and "nmap" in out
        assert "minBW(split)" in out

    def test_compare_includes_annealing(self, capsys):
        assert main(
            ["compare", "--app", "dsp", "--algorithms", "annealing"]
        ) == 0
        assert "annealing" in capsys.readouterr().out

    def test_compare_out_json(self, tmp_path, capsys):
        from repro.api import MapResponse

        out_json = tmp_path / "compare.json"
        assert main(
            ["compare", "--app", "pip", "--algorithms", "gmap", "nmap",
             "--out-json", str(out_json)]
        ) == 0
        payload = json.loads(out_json.read_text())
        responses = [MapResponse.from_dict(entry) for entry in payload]
        assert [r.request.mapper for r in responses] == ["gmap", "nmap"]
        assert all(r.min_bw_split is not None for r in responses)

    def test_compare_seed_applies_only_to_stochastic(self, capsys):
        assert main(
            ["compare", "--app", "pip", "--seed", "5",
             "--algorithms", "pmap", "annealing"]
        ) == 0
        out = capsys.readouterr().out
        assert "pmap" in out and "annealing" in out

    def test_compare_process_executor_matches_threads(self, capsys):
        args = ["compare", "--app", "pip", "--algorithms", "gmap", "nmap",
                "--workers", "2"]
        assert main(args + ["--executor", "thread"]) == 0
        thread_out = capsys.readouterr().out
        assert main(args + ["--executor", "process"]) == 0
        process_out = capsys.readouterr().out
        assert process_out == thread_out

    def test_compare_rejects_unknown_executor(self, capsys):
        with pytest.raises(SystemExit):
            main(["compare", "--app", "pip", "--executor", "fiber"])
        assert "--executor" in capsys.readouterr().err


class TestExperiment:
    def test_table3(self, capsys):
        assert main(["experiment", "table3"]) == 0
        assert "minp BW" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "figure99"])
