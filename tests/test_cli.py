"""CLI tests (argument handling and end-to-end subcommands)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestListApps:
    def test_lists_all(self, capsys):
        assert main(["list-apps"]) == 0
        out = capsys.readouterr().out
        for name in ("vopd", "mpeg4", "dsp", "pip"):
            assert name in out


class TestMap:
    def test_map_builtin_app(self, capsys):
        assert main(["map", "--app", "dsp"]) == 0
        out = capsys.readouterr().out
        assert "comm cost" in out
        assert "filter" in out

    def test_map_explicit_mesh(self, capsys):
        assert main(["map", "--app", "pip", "--mesh", "4x2"]) == 0
        assert "4x2" in capsys.readouterr().out

    def test_map_bad_mesh(self, capsys):
        assert main(["map", "--app", "pip", "--mesh", "banana"]) == 2
        assert "error" in capsys.readouterr().err

    def test_map_unknown_app(self, capsys):
        assert main(["map", "--app", "nonexistent"]) == 2

    def test_map_writes_json_and_dot(self, tmp_path, capsys):
        out_json = tmp_path / "mapping.json"
        out_dot = tmp_path / "mapping.dot"
        code = main(
            [
                "map", "--app", "dsp",
                "--out-json", str(out_json),
                "--out-dot", str(out_dot),
            ]
        )
        assert code == 0
        payload = json.loads(out_json.read_text())
        assert payload["app"] == "dsp"
        assert len(payload["placement"]) == 6
        assert "digraph" in out_dot.read_text()

    def test_map_from_json_file(self, tmp_path, capsys, tiny_graph):
        from repro.graphs.io import save_core_graph

        path = tmp_path / "custom.json"
        save_core_graph(tiny_graph, path)
        assert main(["map", "--app", str(path)]) == 0
        assert "tiny" in capsys.readouterr().out

    @pytest.mark.parametrize("algorithm", ["pmap", "gmap", "pbb", "nmap-ta"])
    def test_algorithms(self, algorithm, capsys):
        assert main(["map", "--app", "pip", "--algorithm", algorithm]) == 0


class TestSimulate:
    def test_simulate_dsp(self, capsys):
        assert main(["simulate", "--app", "dsp", "--cycles", "3000"]) == 0
        out = capsys.readouterr().out
        assert "latency mean" in out
        assert "hottest link" in out


class TestDesign:
    def test_design_prints_netlist(self, capsys):
        assert main(["design", "--app", "dsp"]) == 0
        out = capsys.readouterr().out
        assert "SC_MODULE" in out
        assert "total_area_mm2" in out

    def test_design_writes_file(self, tmp_path, capsys):
        out = tmp_path / "noc.cpp"
        assert main(["design", "--app", "dsp", "--out", str(out)]) == 0
        assert "xpipes_switch" in out.read_text()


class TestCompare:
    def test_compare_table(self, capsys):
        assert main(["compare", "--app", "pip", "--algorithms", "gmap", "nmap"]) == 0
        out = capsys.readouterr().out
        assert "gmap" in out and "nmap" in out
        assert "minBW(split)" in out

    def test_compare_includes_annealing(self, capsys):
        assert main(
            ["compare", "--app", "dsp", "--algorithms", "annealing"]
        ) == 0
        assert "annealing" in capsys.readouterr().out


class TestExperiment:
    def test_table3(self, capsys):
        assert main(["experiment", "table3"]) == 0
        assert "minp BW" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "figure99"])
