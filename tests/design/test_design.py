"""Unit tests for the design generator (×pipesCompiler substitute)."""

from __future__ import annotations

import pytest

from repro.design.compiler import compile_design
from repro.design.components import XpipesLibrary
from repro.design.netlist import emit_netlist
from repro.errors import DesignError
from repro.graphs.commodities import build_commodities
from repro.mapping.base import Mapping
from repro.routing.min_path import min_path_routing


@pytest.fixture
def dsp_design():
    from repro.apps.dsp import dsp_filter, dsp_mesh
    from repro.mapping import nmap_single_path

    app = dsp_filter()
    mesh = dsp_mesh(link_bandwidth=app.total_bandwidth())
    result = nmap_single_path(app, mesh)
    commodities = build_commodities(app, result.mapping)
    routing = min_path_routing(mesh, commodities)
    return compile_design(result.mapping, routing)


class TestLibrary:
    def test_table3_defaults(self):
        lib = XpipesLibrary()
        assert lib.ni_area_mm2 == 0.6
        assert lib.switch_base_area_mm2 == 1.08
        assert lib.switch_delay_cycles == 7
        assert lib.packet_bytes == 64

    def test_switch_area_scales_with_ports(self):
        lib = XpipesLibrary()
        assert lib.switch_area_mm2(5) == pytest.approx(1.08)
        assert lib.switch_area_mm2(3) < lib.switch_area_mm2(5)

    def test_invalid_ports(self):
        with pytest.raises(DesignError):
            XpipesLibrary().switch_area_mm2(1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ni_area_mm2": 0.0},
            {"switch_delay_cycles": 0},
            {"packet_bytes": 0},
        ],
    )
    def test_invalid_library(self, kwargs):
        with pytest.raises(DesignError):
            XpipesLibrary(**kwargs)


class TestCompile:
    def test_dsp_counts(self, dsp_design):
        # Figure 5b: six switches (one per node), six NIs
        assert dsp_design.num_switches == 6
        assert len(dsp_design.interfaces) == 6
        assert dsp_design.num_links > 0

    def test_total_area_positive(self, dsp_design):
        assert dsp_design.total_area_mm2 > 6 * 0.6  # at least the NIs

    def test_summary_fields(self, dsp_design):
        summary = dsp_design.summary()
        assert summary["switches"] == 6.0
        assert summary["packet_bytes"] == 64.0
        assert summary["max_link_load_mbps"] == 600.0

    def test_incomplete_mapping_rejected(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2, {"a": 0})
        with pytest.raises(DesignError, match="covers"):
            compile_design(mapping, object())  # routing unused before check

    def test_unused_nodes_get_no_switch(self, tiny_graph, mesh3x3):
        mapping = Mapping(tiny_graph, mesh3x3, {"a": 0, "b": 1, "c": 2})
        commodities = build_commodities(tiny_graph, mapping)
        routing = min_path_routing(mesh3x3, commodities)
        design = compile_design(mapping, routing)
        assert design.num_switches == 3  # top row only


class TestNetlist:
    def test_contains_all_instances(self, dsp_design):
        netlist = emit_netlist(dsp_design)
        for switch in dsp_design.switches:
            assert switch.name in netlist
        for ni in dsp_design.interfaces:
            assert ni.name in netlist
        for link in dsp_design.links:
            assert link.name in netlist

    def test_systemc_shape(self, dsp_design):
        netlist = emit_netlist(dsp_design)
        assert "SC_MODULE" in netlist
        assert "SC_CTOR" in netlist
        assert netlist.count("xpipes_switch") == dsp_design.num_switches

    def test_identifier_sanitized(self, dsp_design):
        dsp_design.name = "123 weird-name!"
        netlist = emit_netlist(dsp_design)
        assert "SC_MODULE(noc_123_weird_name_)" in netlist
