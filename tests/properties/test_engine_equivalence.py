"""Event engine == cycle engine, for every scenario shape we ship.

The contract (ARCHITECTURE.md): engines differ only in how simulated time
advances — never in what happens.  For identical inputs, the event-driven
engine must produce *identical* reports to the cycle-accurate reference:
same delivered-flit counts, same per-flow latency statistics (down to the
histogram), same link utilization, same packet totals.  Plain ``==`` on
every field is the right assertion; any tolerance would hide a scheduling
divergence.

Scenarios cover the seed's workloads (VOPD mesh, DSP slow-link mesh, torus)
plus everything this layer made pluggable: synthetic traffic patterns, the
VC wormhole router, and both fast-path modes of the shared router step.
"""

from __future__ import annotations

import pytest

from repro import fastpath
from repro.apps import vopd
from repro.apps.dsp import dsp_filter, dsp_mesh
from repro.graphs.commodities import build_commodities
from repro.graphs.random_graphs import random_core_graph
from repro.graphs.topology import NoCTopology
from repro.mapping.nmap import nmap_single_path
from repro.routing.min_path import min_path_routing
from repro.simnoc import SimConfig, Simulator, build_network, build_synthetic_network
from repro.simnoc.trace import TraceRecorder


def assert_reports_identical(fast, reference):
    """Every statistic of the two reports must match exactly."""
    assert fast.stats == reference.stats
    assert fast.packets_created == reference.packets_created
    assert fast.packets_delivered == reference.packets_delivered
    assert fast.per_commodity_latency == reference.per_commodity_latency
    assert fast.per_commodity_jitter == reference.per_commodity_jitter
    assert fast.per_commodity_latency_std == reference.per_commodity_latency_std
    assert fast.per_flow == reference.per_flow
    assert fast.link_utilization == reference.link_utilization
    assert fast.link_flits == reference.link_flits
    assert fast.cycles == reference.cycles


def _trace_setup(app, mesh, **config_kwargs):
    mapping = nmap_single_path(app, mesh).mapping
    commodities = build_commodities(app, mapping)
    routing = min_path_routing(mesh, commodities)
    config = SimConfig(**config_kwargs)
    return mesh, commodities, routing, config


class TestTraceTrafficEquivalence:
    @pytest.mark.parametrize("bandwidth_scale,burst", [(0.05, 1.0), (0.5, 3.0)])
    def test_vopd_mesh(self, bandwidth_scale, burst):
        app = vopd()
        mesh = NoCTopology.smallest_mesh_for(16, link_bandwidth=app.total_bandwidth())
        mesh, commodities, routing, config = _trace_setup(
            app,
            mesh,
            warmup_cycles=500,
            measure_cycles=4_000,
            drain_cycles=500,
            seed=13,
            mean_burst_packets=burst,
        )

        def run(engine):
            network = build_network(
                mesh, commodities, routing, config, bandwidth_scale=bandwidth_scale
            )
            return Simulator(network, engine=engine).run()

        assert_reports_identical(run("event"), run("cycle"))

    @pytest.mark.parametrize("bandwidth_scale", [0.05, 0.3, 1.0])
    def test_dsp_slow_links(self, bandwidth_scale):
        """The paper's DSP fabric: 2x3 mesh, sub-flit/cycle links."""
        mesh, commodities, routing, config = _trace_setup(
            dsp_filter(),
            dsp_mesh(link_bandwidth=500.0),
            warmup_cycles=500,
            measure_cycles=6_000,
            drain_cycles=500,
            seed=3,
        )

        def run(engine):
            network = build_network(
                mesh, commodities, routing, config, bandwidth_scale=bandwidth_scale
            )
            return Simulator(network, engine=engine).run()

        assert_reports_identical(run("event"), run("cycle"))

    def test_torus(self):
        app = random_core_graph(12, seed=3)
        mesh = NoCTopology.torus_grid(4, 4, link_bandwidth=app.total_bandwidth())
        mesh, commodities, routing, config = _trace_setup(
            app,
            mesh,
            warmup_cycles=500,
            measure_cycles=4_000,
            drain_cycles=500,
            seed=5,
            mean_burst_packets=2.0,
        )

        def run(engine):
            network = build_network(mesh, commodities, routing, config)
            return Simulator(network, engine=engine).run()

        assert_reports_identical(run("event"), run("cycle"))

    def test_event_engine_matches_seed_reference_loop(self):
        """Cross-mode: event engine (fast) == full scan on the scalar step."""
        app = dsp_filter()
        mesh, commodities, routing, config = _trace_setup(
            app,
            dsp_mesh(link_bandwidth=500.0),
            warmup_cycles=500,
            measure_cycles=6_000,
            drain_cycles=500,
            seed=3,
        )

        def run(engine, mode_ctx, active_set=None):
            network = build_network(
                mesh, commodities, routing, config, bandwidth_scale=0.2
            )
            with mode_ctx():
                return Simulator(network, active_set=active_set, engine=engine).run()

        reference = run("cycle", fastpath.scalar_reference, active_set=False)
        assert_reports_identical(run("event", fastpath.fast_paths), reference)
        assert_reports_identical(run("event", fastpath.scalar_reference), reference)

    def test_flit_traces_identical(self):
        """Not just aggregates: the exact flit-movement sequence matches."""
        app = vopd()
        mesh = NoCTopology.smallest_mesh_for(16, link_bandwidth=app.total_bandwidth())
        mesh, commodities, routing, config = _trace_setup(
            app,
            mesh,
            warmup_cycles=200,
            measure_cycles=2_000,
            drain_cycles=300,
            seed=7,
            mean_burst_packets=2.0,
        )

        def run(engine):
            network = build_network(
                mesh, commodities, routing, config, bandwidth_scale=0.4
            )
            recorder = TraceRecorder(max_events=10**6)
            Simulator(network, trace=recorder, engine=engine).run()
            return recorder.events

        assert run("event") == run("cycle")


class TestSyntheticTrafficEquivalence:
    @pytest.mark.parametrize("pattern", ["uniform", "transpose", "onoff"])
    def test_patterns_on_mesh(self, pattern):
        mesh = NoCTopology.mesh(4, 4, link_bandwidth=800.0)
        config = SimConfig(
            warmup_cycles=300, measure_cycles=3_000, drain_cycles=500, seed=11
        )

        def run(engine):
            network = build_synthetic_network(mesh, config, pattern, 0.08)
            return Simulator(network, engine=engine).run()

        assert_reports_identical(run("event"), run("cycle"))

    def test_uniform_near_saturation(self):
        """High load exercises contention, backpressure and credit stalls."""
        mesh = NoCTopology.mesh(3, 3, link_bandwidth=800.0)
        config = SimConfig(
            warmup_cycles=300, measure_cycles=3_000, drain_cycles=1_000, seed=2
        )

        def run(engine):
            network = build_synthetic_network(mesh, config, "uniform", 0.3)
            return Simulator(network, engine=engine).run()

        assert_reports_identical(run("event"), run("cycle"))


class TestVCRouterEquivalence:
    @pytest.mark.parametrize("num_vcs", [2, 4])
    def test_trace_traffic_with_vcs(self, num_vcs):
        app = vopd()
        mesh = NoCTopology.smallest_mesh_for(16, link_bandwidth=app.total_bandwidth())
        mapping = nmap_single_path(app, mesh).mapping
        commodities = build_commodities(app, mapping)
        routing = min_path_routing(mesh, commodities)
        config = SimConfig(
            warmup_cycles=300,
            measure_cycles=3_000,
            drain_cycles=500,
            seed=13,
            num_vcs=num_vcs,
        )

        def run(engine):
            network = build_network(
                mesh, commodities, routing, config, bandwidth_scale=0.5
            )
            return Simulator(network, engine=engine).run()

        assert_reports_identical(run("event"), run("cycle"))

    def test_vc_router_scalar_mode_matches(self):
        """The VC router's fast-path step is bit-exact vs its full scan."""
        mesh = NoCTopology.mesh(3, 3, link_bandwidth=600.0)
        config = SimConfig(
            warmup_cycles=300,
            measure_cycles=3_000,
            drain_cycles=500,
            seed=4,
            num_vcs=2,
            vc_buffer_depth=4,
        )

        def run(mode_ctx):
            network = build_synthetic_network(mesh, config, "uniform", 0.2)
            with mode_ctx():
                return Simulator(network, engine="cycle", active_set=False).run()

        assert_reports_identical(
            run(fastpath.fast_paths), run(fastpath.scalar_reference)
        )
