"""Event and vector engines == cycle engine, for every scenario we ship.

The contract (ARCHITECTURE.md): engines differ only in how simulated time
advances — never in what happens.  For identical inputs, the event-driven
and structure-of-arrays vector engines must produce *identical* reports to
the cycle-accurate reference: same delivered-flit counts, same per-flow
latency statistics (down to the histogram), same link utilization, same
packet totals.  Plain ``==`` on every field is the right assertion; any
tolerance would hide a scheduling divergence.

Scenarios cover the seed's workloads (VOPD mesh, DSP slow-link mesh, torus)
plus everything the model/engine split made pluggable: synthetic traffic
patterns, the VC wormhole router, both fast-path modes of the shared router
step — and, because the vector engine exists precisely for saturation, a
dedicated injection-rate matrix below, at and above the saturation knee.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro import fastpath
from repro.apps import vopd
from repro.apps.dsp import dsp_filter, dsp_mesh
from repro.graphs.commodities import build_commodities
from repro.graphs.random_graphs import random_core_graph
from repro.graphs.topology import NoCTopology
from repro.mapping.nmap import nmap_single_path
from repro.routing.min_path import min_path_routing
from repro.simnoc import SimConfig, Simulator, build_network, build_synthetic_network
from repro.simnoc.trace import TraceRecorder

#: The fast backends, each pinned against the cycle reference.
FAST_ENGINES = ("event", "vector")


def assert_reports_identical(fast, reference):
    """Every statistic of the two reports must match exactly."""
    assert fast.stats == reference.stats
    assert fast.packets_created == reference.packets_created
    assert fast.packets_delivered == reference.packets_delivered
    assert fast.per_commodity_latency == reference.per_commodity_latency
    assert fast.per_commodity_jitter == reference.per_commodity_jitter
    assert fast.per_commodity_latency_std == reference.per_commodity_latency_std
    assert fast.per_flow == reference.per_flow
    assert fast.link_utilization == reference.link_utilization
    assert fast.link_flits == reference.link_flits
    assert fast.cycles == reference.cycles


def _trace_setup(app, mesh, **config_kwargs):
    mapping = nmap_single_path(app, mesh).mapping
    commodities = build_commodities(app, mapping)
    routing = min_path_routing(mesh, commodities)
    config = SimConfig(**config_kwargs)
    return mesh, commodities, routing, config


class TestTraceTrafficEquivalence:
    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("bandwidth_scale,burst", [(0.05, 1.0), (0.5, 3.0)])
    def test_vopd_mesh(self, engine, bandwidth_scale, burst):
        app = vopd()
        mesh = NoCTopology.smallest_mesh_for(16, link_bandwidth=app.total_bandwidth())
        mesh, commodities, routing, config = _trace_setup(
            app,
            mesh,
            warmup_cycles=500,
            measure_cycles=4_000,
            drain_cycles=500,
            seed=13,
            mean_burst_packets=burst,
        )

        def run(name):
            network = build_network(
                mesh, commodities, routing, config, bandwidth_scale=bandwidth_scale
            )
            return Simulator(network, engine=name).run()

        assert_reports_identical(run(engine), run("cycle"))

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("bandwidth_scale", [0.05, 0.3, 1.0])
    def test_dsp_slow_links(self, engine, bandwidth_scale):
        """The paper's DSP fabric: 2x3 mesh, sub-flit/cycle links."""
        mesh, commodities, routing, config = _trace_setup(
            dsp_filter(),
            dsp_mesh(link_bandwidth=500.0),
            warmup_cycles=500,
            measure_cycles=6_000,
            drain_cycles=500,
            seed=3,
        )

        def run(name):
            network = build_network(
                mesh, commodities, routing, config, bandwidth_scale=bandwidth_scale
            )
            return Simulator(network, engine=name).run()

        assert_reports_identical(run(engine), run("cycle"))

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    def test_torus(self, engine):
        app = random_core_graph(12, seed=3)
        mesh = NoCTopology.torus_grid(4, 4, link_bandwidth=app.total_bandwidth())
        mesh, commodities, routing, config = _trace_setup(
            app,
            mesh,
            warmup_cycles=500,
            measure_cycles=4_000,
            drain_cycles=500,
            seed=5,
            mean_burst_packets=2.0,
        )

        def run(name):
            network = build_network(mesh, commodities, routing, config)
            return Simulator(network, engine=name).run()

        assert_reports_identical(run(engine), run("cycle"))

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    def test_fast_engines_match_seed_reference_loop(self, engine):
        """Cross-mode: fast engine (fast paths on) == full scan on the
        scalar step — and the event engine also in scalar mode."""
        app = dsp_filter()
        mesh, commodities, routing, config = _trace_setup(
            app,
            dsp_mesh(link_bandwidth=500.0),
            warmup_cycles=500,
            measure_cycles=6_000,
            drain_cycles=500,
            seed=3,
        )

        def run(name, mode_ctx, active_set=None):
            network = build_network(
                mesh, commodities, routing, config, bandwidth_scale=0.2
            )
            with mode_ctx():
                return Simulator(network, active_set=active_set, engine=name).run()

        reference = run("cycle", fastpath.scalar_reference, active_set=False)
        assert_reports_identical(run(engine, fastpath.fast_paths), reference)
        if engine == "event":
            assert_reports_identical(run(engine, fastpath.scalar_reference), reference)

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    def test_flit_traces_identical(self, engine):
        """Not just aggregates: the exact flit-movement sequence matches."""
        app = vopd()
        mesh = NoCTopology.smallest_mesh_for(16, link_bandwidth=app.total_bandwidth())
        mesh, commodities, routing, config = _trace_setup(
            app,
            mesh,
            warmup_cycles=200,
            measure_cycles=2_000,
            drain_cycles=300,
            seed=7,
            mean_burst_packets=2.0,
        )

        def run(name):
            network = build_network(
                mesh, commodities, routing, config, bandwidth_scale=0.4
            )
            recorder = TraceRecorder(max_events=10**6)
            Simulator(network, trace=recorder, engine=name).run()
            return recorder.events

        assert run(engine) == run("cycle")


class TestSyntheticTrafficEquivalence:
    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("pattern", ["uniform", "transpose", "onoff"])
    def test_patterns_on_mesh(self, engine, pattern):
        mesh = NoCTopology.mesh(4, 4, link_bandwidth=800.0)
        config = SimConfig(
            warmup_cycles=300, measure_cycles=3_000, drain_cycles=500, seed=11
        )

        def run(name):
            network = build_synthetic_network(mesh, config, pattern, 0.08)
            return Simulator(network, engine=name).run()

        assert_reports_identical(run(engine), run("cycle"))

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    def test_uniform_near_saturation(self, engine):
        """High load exercises contention, backpressure and credit stalls."""
        mesh = NoCTopology.mesh(3, 3, link_bandwidth=800.0)
        config = SimConfig(
            warmup_cycles=300, measure_cycles=3_000, drain_cycles=1_000, seed=2
        )

        def run(name):
            network = build_synthetic_network(mesh, config, "uniform", 0.3)
            return Simulator(network, engine=name).run()

        assert_reports_identical(run(engine), run("cycle"))


class TestSaturationMatrix:
    """Below / at / above the knee — the vector engine's home regime.

    On the 4x4 mesh with 1 flit/cycle links and uniform traffic, the
    latency knee sits near 0.2 flits/cycle/node; 0.05 is comfortably
    below, 0.22 rides the knee, and 0.40 oversubscribes the fabric so NI
    backlogs grow for the whole run (the hardest bookkeeping case: every
    component busy every cycle).
    """

    RATES = (0.05, 0.22, 0.40)

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("rate", RATES)
    def test_uniform_rate_matrix(self, engine, rate):
        mesh = NoCTopology.mesh(4, 4, link_bandwidth=1600.0)
        config = SimConfig(
            warmup_cycles=300, measure_cycles=2_500, drain_cycles=600, seed=5
        )

        def run(name):
            network = build_synthetic_network(mesh, config, "uniform", rate)
            return Simulator(network, engine=name).run()

        assert_reports_identical(run(engine), run("cycle"))

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("rate", (0.05, 0.30))
    def test_transpose_saturates_the_diagonal(self, engine, rate):
        """Transpose under XY concentrates the diagonal: 0.30 is far past
        its knee, with worms blocked on credits for most of the run."""
        mesh = NoCTopology.mesh(4, 4, link_bandwidth=1600.0)
        config = SimConfig(
            warmup_cycles=300, measure_cycles=2_500, drain_cycles=600, seed=9
        )

        def run(name):
            network = build_synthetic_network(mesh, config, "transpose", rate)
            return Simulator(network, engine=name).run()

        assert_reports_identical(run(engine), run("cycle"))

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("rate", (0.05, 0.35))
    def test_vc_router_rate_matrix(self, engine, rate):
        """The same sweep on the VC router (per-lane credits and buffers)."""
        mesh = NoCTopology.mesh(4, 4, link_bandwidth=1600.0)
        config = SimConfig(
            warmup_cycles=300,
            measure_cycles=2_000,
            drain_cycles=600,
            seed=4,
            num_vcs=2,
            vc_buffer_depth=4,
        )

        def run(name):
            network = build_synthetic_network(mesh, config, "uniform", rate)
            return Simulator(network, engine=name).run()

        assert_reports_identical(run(engine), run("cycle"))

    def test_vector_trace_identical_at_saturation(self):
        """Flit-for-flit identity in the regime the engine was built for."""
        mesh = NoCTopology.mesh(4, 4, link_bandwidth=1600.0)
        config = SimConfig(
            warmup_cycles=200, measure_cycles=1_500, drain_cycles=400, seed=3
        )

        def run(name):
            network = build_synthetic_network(mesh, config, "uniform", 0.30)
            recorder = TraceRecorder(max_events=10**6)
            Simulator(network, trace=recorder, engine=name).run()
            return recorder.events

        assert run("vector") == run("cycle")


class TestVCRouterEquivalence:
    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("num_vcs", [2, 4])
    def test_trace_traffic_with_vcs(self, engine, num_vcs):
        app = vopd()
        mesh = NoCTopology.smallest_mesh_for(16, link_bandwidth=app.total_bandwidth())
        mapping = nmap_single_path(app, mesh).mapping
        commodities = build_commodities(app, mapping)
        routing = min_path_routing(mesh, commodities)
        config = SimConfig(
            warmup_cycles=300,
            measure_cycles=3_000,
            drain_cycles=500,
            seed=13,
            num_vcs=num_vcs,
        )

        def run(name):
            network = build_network(
                mesh, commodities, routing, config, bandwidth_scale=0.5
            )
            return Simulator(network, engine=name).run()

        assert_reports_identical(run(engine), run("cycle"))

    @pytest.mark.parametrize("num_vcs", [2, 4])
    def test_vc_flit_traces_identical(self, num_vcs):
        """The vector engine's VC loop, pinned flit for flit."""
        app = vopd()
        mesh = NoCTopology.smallest_mesh_for(16, link_bandwidth=app.total_bandwidth())
        mapping = nmap_single_path(app, mesh).mapping
        commodities = build_commodities(app, mapping)
        routing = min_path_routing(mesh, commodities)
        config = SimConfig(
            warmup_cycles=300,
            measure_cycles=2_000,
            drain_cycles=500,
            seed=13,
            num_vcs=num_vcs,
        )

        def run(name):
            network = build_network(
                mesh, commodities, routing, config, bandwidth_scale=0.5
            )
            recorder = TraceRecorder(max_events=10**6)
            Simulator(network, trace=recorder, engine=name).run()
            return recorder.events

        assert run("vector") == run("cycle")

    def test_vc_router_scalar_mode_matches(self):
        """The VC router's fast-path step is bit-exact vs its full scan."""
        mesh = NoCTopology.mesh(3, 3, link_bandwidth=600.0)
        config = SimConfig(
            warmup_cycles=300,
            measure_cycles=3_000,
            drain_cycles=500,
            seed=4,
            num_vcs=2,
            vc_buffer_depth=4,
        )

        def run(mode_ctx):
            network = build_synthetic_network(mesh, config, "uniform", 0.2)
            with mode_ctx():
                return Simulator(network, engine="cycle", active_set=False).run()

        assert_reports_identical(
            run(fastpath.fast_paths), run(fastpath.scalar_reference)
        )


class TestAutoEngineEquivalence:
    """``auto`` only ever delegates to bit-identical backends."""

    @pytest.mark.parametrize("rate", (0.02, 0.30))
    def test_auto_matches_cycle_at_both_ends(self, rate):
        mesh = NoCTopology.mesh(4, 4, link_bandwidth=1600.0)
        config = SimConfig(
            warmup_cycles=300, measure_cycles=2_000, drain_cycles=500, seed=6
        )

        def run(name):
            network = build_synthetic_network(mesh, config, "uniform", rate)
            return Simulator(network, engine=name).run()

        assert_reports_identical(run("auto"), run("cycle"))


class TestKernelTierEquivalence:
    """Every rung of the JIT ladder is bit-identical to the cycle engine.

    ``off`` pins the interpreted structure-of-arrays loops (what a
    numba-less, compiler-less machine runs); ``py`` executes the kernel
    twin as plain Python, so the kernel *algorithm* is property-tested
    even where no backend compiles; ``c`` and ``numba`` are the compiled
    rungs, each skipped with a reason where its toolchain is missing.
    """

    MODES = ("off", "py", "c", "numba")

    @pytest.fixture
    def jit_mode(self, request, monkeypatch):
        from repro.simnoc.engines.jit import resolve_backend

        mode = request.param
        monkeypatch.delenv("REPRO_NO_JIT", raising=False)
        monkeypatch.setenv("REPRO_JIT", mode)
        backend, reason = resolve_backend()
        if mode != "off" and backend is None:
            pytest.skip(f"JIT backend {mode!r} unavailable here: {reason}")
        return mode

    @pytest.mark.parametrize("jit_mode", MODES, indirect=True)
    @pytest.mark.parametrize("num_vcs", [1, 2])
    def test_reports_and_traces_match_cycle(self, jit_mode, num_vcs):
        mesh = NoCTopology.mesh(4, 4, link_bandwidth=1600.0)
        config = SimConfig(
            warmup_cycles=200,
            measure_cycles=1_200,
            drain_cycles=400,
            seed=3,
            num_vcs=num_vcs,
            vc_buffer_depth=4 if num_vcs > 1 else None,
        )

        def run(name):
            network = build_synthetic_network(mesh, config, "uniform", 0.30)
            recorder = TraceRecorder(max_events=10**6)
            report = Simulator(network, trace=recorder, engine=name).run()
            return report, recorder.events

        fast_report, fast_events = run("vector")
        ref_report, ref_events = run("cycle")
        assert_reports_identical(fast_report, ref_report)
        assert fast_events == ref_events

    @pytest.mark.parametrize("jit_mode", MODES, indirect=True)
    def test_replica_batch_matches_one_at_a_time(self, jit_mode):
        """R sims advanced in one batched call == the same R run singly:
        identical reports, identical traces, positional order kept."""
        from repro.simnoc.engines.vector import VectorEngine, run_replicas

        mesh = NoCTopology.mesh(4, 4, link_bandwidth=1600.0)
        # Mixed rates, seeds and router models in one batch.
        variants = [
            (rate, seed, num_vcs)
            for rate, seed in ((0.05, 1), (0.22, 2), (0.40, 3))
            for num_vcs in (1, 2)
        ]

        def build(rate, seed, num_vcs):
            config = SimConfig(
                warmup_cycles=200,
                measure_cycles=800,
                drain_cycles=300,
                seed=seed,
                num_vcs=num_vcs,
                vc_buffer_depth=4 if num_vcs > 1 else None,
            )
            network = build_synthetic_network(mesh, config, "uniform", rate)
            recorder = TraceRecorder(max_events=10**6)
            return Simulator(network, trace=recorder, engine="vector"), recorder

        batched = [build(*v) for v in variants]
        errors = run_replicas([sim for sim, _ in batched])
        assert errors == [None] * len(variants)

        for (sim, recorder), variant in zip(batched, variants):
            single, single_recorder = build(*variant)
            VectorEngine().run(single)
            assert_reports_identical(sim._build_report(), single._build_report())
            assert recorder.events == single_recorder.events


#: (topology kind, num_vcs, rate) -> (report, trace events) from the cycle
#: engine — each reference is shared by the shards={1,2,4} sharded runs.
_SHARDED_REFS: dict = {}


def _sharded_scenario(topo_kind, num_vcs, rate):
    """Network + config for one cell of the sharded equivalence matrix."""
    if topo_kind == "mesh":
        fabric = NoCTopology.mesh(8, 8, link_bandwidth=1600.0)
    else:
        fabric = NoCTopology.torus_grid(8, 8, link_bandwidth=1600.0)
    config = SimConfig(
        warmup_cycles=100,
        measure_cycles=500,
        drain_cycles=200,
        seed=5,
        num_vcs=num_vcs,
        vc_buffer_depth=4 if num_vcs > 1 else None,
    )
    return build_synthetic_network(fabric, config, "uniform", rate)


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="sharded engine needs the fork start method",
)
class TestShardedEngineEquivalence:
    """The sharded engine == cycle engine for ANY shard count.

    The conservative barrier protocol (ARCHITECTURE.md) promises that
    splitting the fabric across worker processes changes wall-clock
    behaviour only: reports and flit traces stay byte-identical to the
    single-process reference for every shard count, both router models,
    and loads below, at and above the saturation knee.  Shards=1 pins the
    degenerate case (one worker, no boundary traffic); shards=4 on the
    torus cuts wrap-around links, the hardest boundary pattern.
    """

    RATES = (0.05, 0.22, 0.40)

    @staticmethod
    def _cycle_reference(topo_kind, num_vcs, rate):
        key = (topo_kind, num_vcs, rate)
        if key not in _SHARDED_REFS:
            network = _sharded_scenario(*key)
            recorder = TraceRecorder(max_events=10**6)
            report = Simulator(network, trace=recorder, engine="cycle").run()
            _SHARDED_REFS[key] = (report, recorder.events)
        return _SHARDED_REFS[key]

    @pytest.mark.parametrize("shards", (1, 2, 4))
    @pytest.mark.parametrize("num_vcs", (1, 2))
    @pytest.mark.parametrize("topo_kind", ("mesh", "torus"))
    @pytest.mark.parametrize("rate", RATES)
    def test_reports_and_traces_match_cycle(self, topo_kind, num_vcs, rate, shards):
        network = _sharded_scenario(topo_kind, num_vcs, rate)
        recorder = TraceRecorder(max_events=10**6)
        report = Simulator(
            network,
            trace=recorder,
            engine="sharded",
            shards=shards,
            partitioner="greedy-edge",
        ).run()
        ref_report, ref_events = self._cycle_reference(topo_kind, num_vcs, rate)
        assert_reports_identical(report, ref_report)
        assert recorder.events == ref_events

    def test_round_robin_single_node_segments(self):
        """Round-robin gives every node its own segment — all traffic is
        boundary traffic, the protocol's worst case."""
        mesh = NoCTopology.mesh(4, 4, link_bandwidth=1600.0)
        config = SimConfig(
            warmup_cycles=200, measure_cycles=1_000, drain_cycles=400, seed=3
        )

        def run(name, **kwargs):
            network = build_synthetic_network(mesh, config, "uniform", 0.25)
            recorder = TraceRecorder(max_events=10**6)
            report = Simulator(network, trace=recorder, engine=name, **kwargs).run()
            return report, recorder.events

        fast_report, fast_events = run(
            "sharded", shards=4, partitioner="round-robin"
        )
        ref_report, ref_events = run("cycle")
        assert_reports_identical(fast_report, ref_report)
        assert fast_events == ref_events


class TestFaultScenarioEquivalence:
    """Fault-injected scenarios run bit-identically on every engine.

    The fault subsystem only changes *inputs* — a masked topology and
    rerouted paths — so the engine-equivalence contract must carry over
    unchanged: identical reports, and identical flit traces, for traffic
    detouring around failed links and routers.
    """

    @staticmethod
    def _fault_setup(topology, spec, seed):
        from repro.faults import fault_reroute
        from repro.faults.spec import FaultSpec

        app = random_core_graph(12, seed=5)
        fabric = topology.with_uniform_bandwidth(app.total_bandwidth())
        degraded = FaultSpec(**spec).apply(fabric)
        mapping = nmap_single_path(app, degraded).mapping
        commodities = build_commodities(app, mapping)
        routing = fault_reroute(degraded, commodities)
        config = SimConfig(
            warmup_cycles=300,
            measure_cycles=3_000,
            drain_cycles=500,
            seed=seed,
            mean_burst_packets=2.0,
        )
        return degraded, commodities, routing, config

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("spec", [
        {"failed_links": ((1, 2),)},
        {"failed_links": ((1, 2), (9, 13)), "degraded_links": ((5, 6, 0.5),)},
    ])
    def test_failed_links_on_mesh(self, engine, spec):
        degraded, commodities, routing, config = self._fault_setup(
            NoCTopology.mesh(4, 4), spec, seed=17
        )

        def run(name):
            network = build_network(
                degraded, commodities, routing, config, bandwidth_scale=0.3
            )
            return Simulator(network, engine=name).run()

        assert_reports_identical(run(engine), run("cycle"))

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    def test_failed_router_on_torus(self, engine):
        degraded, commodities, routing, config = self._fault_setup(
            NoCTopology.torus_grid(4, 4), {"failed_routers": (5,)}, seed=23
        )

        def run(name):
            network = build_network(
                degraded, commodities, routing, config, bandwidth_scale=0.3
            )
            return Simulator(network, engine=name).run()

        assert_reports_identical(run(engine), run("cycle"))

    @pytest.mark.parametrize("engine", FAST_ENGINES)
    def test_fault_flit_traces_identical(self, engine):
        """Not just aggregates: the rerouted flit movements match exactly."""
        degraded, commodities, routing, config = self._fault_setup(
            NoCTopology.mesh(4, 4),
            {"failed_links": ((1, 2),), "failed_routers": (12,)},
            seed=29,
        )

        def run(name):
            network = build_network(
                degraded, commodities, routing, config, bandwidth_scale=0.4
            )
            recorder = TraceRecorder(max_events=10**6)
            Simulator(network, trace=recorder, engine=name).run()
            return recorder.events

        assert run(engine) == run("cycle")
