"""Fast path == scalar reference, for every vectorized kernel.

The contract (PERFORMANCE.md): every numpy-backed fast path produces
*bit-identical* results to the seed's scalar implementation.  Bandwidth
labels in this repository are integer-valued, so all Equation-7 arithmetic
is exact in float64 and plain ``==`` comparisons are the right assertion —
any tolerance would hide a real divergence.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import fastpath
from repro.apps import vopd
from repro.graphs.commodities import build_commodities
from repro.graphs.random_graphs import random_core_graph
from repro.graphs.topology import NoCTopology
from repro.mapping import annealing_mapping, nmap_single_path
from repro.mapping.base import Mapping
from repro.metrics.comm_cost import (
    comm_cost,
    comm_cost_limit,
    comm_cost_limit_reference,
    comm_cost_reference,
    swap_cost_delta_reference,
    swap_cost_deltas,
)
from repro.routing.min_path import min_path_routing
from repro.simnoc.config import SimConfig
from repro.simnoc.network import build_network
from repro.simnoc.simulator import Simulator


def _workloads():
    """(core graph, topology) pairs covering mesh, torus and empty nodes."""
    yield vopd(), NoCTopology.smallest_mesh_for(16)
    yield random_core_graph(30, seed=7), NoCTopology.smallest_mesh_for(30)
    yield random_core_graph(12, seed=3), NoCTopology.torus_grid(4, 4)


def _random_complete_mapping(app, mesh, rng):
    nodes = list(mesh.nodes)
    rng.shuffle(nodes)
    return Mapping(app, mesh, dict(zip(app.cores, nodes)))


class TestCostKernels:
    def test_comm_cost_matches_reference(self):
        rng = random.Random(2024)
        for app, mesh in _workloads():
            for _ in range(10):
                mapping = _random_complete_mapping(app, mesh, rng)
                assert comm_cost(mapping) == comm_cost_reference(mapping)

    def test_comm_cost_tracks_mutations(self):
        """The in-place array maintenance must survive swap/assign churn."""
        rng = random.Random(5)
        app, mesh = vopd(), NoCTopology.smallest_mesh_for(16)
        mapping = _random_complete_mapping(app, mesh, rng)
        comm_cost(mapping)  # force the array cache into existence
        for _ in range(50):
            a, b = rng.sample(list(mesh.nodes), 2)
            mapping.swap_nodes(a, b)
            assert comm_cost(mapping) == comm_cost_reference(mapping)
        core = app.cores[0]
        node = mapping.node_of(core)
        mapping.unassign(core)
        mapping.assign(core, node)
        assert comm_cost(mapping) == comm_cost_reference(mapping)

    def test_comm_cost_limit_decisions_match(self):
        rng = random.Random(11)
        for app, mesh in _workloads():
            mapping = _random_complete_mapping(app, mesh, rng)
            exact = comm_cost_reference(mapping)
            for limit in (0.0, exact / 2, exact, exact * 2):
                fast = comm_cost_limit(mapping, limit)
                slow = comm_cost_limit_reference(mapping, limit)
                assert (fast > limit) == (slow > limit)

    def test_batch_swap_deltas_match_scalar_all_pairs(self):
        rng = random.Random(77)
        for app, mesh in _workloads():
            mapping = _random_complete_mapping(app, mesh, rng)
            for a in mesh.nodes:
                candidates = [b for b in mesh.nodes if b != a]
                batch = swap_cost_deltas(mapping, a, candidates)
                scalar = np.array(
                    [swap_cost_delta_reference(mapping, a, b) for b in candidates]
                )
                assert np.array_equal(batch, scalar)

    def test_batch_swap_deltas_empty_and_identity(self):
        app, mesh = vopd(), NoCTopology.smallest_mesh_for(16)
        mapping = _random_complete_mapping(app, mesh, random.Random(1))
        assert swap_cost_deltas(mapping, 0, []).size == 0
        assert swap_cost_deltas(mapping, 3, [3])[0] == 0.0


class TestAlgorithmTrajectories:
    """Fast paths must not just approximate — the *search* must be identical."""

    @pytest.mark.parametrize("size,seed", [(16, 0), (35, 2039)])
    def test_nmap_identical_under_both_modes(self, size, seed):
        app = vopd() if size == 16 else random_core_graph(size, seed=seed)
        mesh = NoCTopology.smallest_mesh_for(
            app.num_cores, link_bandwidth=app.total_bandwidth()
        )
        with fastpath.scalar_reference():
            reference = nmap_single_path(app, mesh)
        with fastpath.fast_paths():
            fast = nmap_single_path(app, mesh)
        assert fast.mapping.placement == reference.mapping.placement
        assert fast.comm_cost == reference.comm_cost
        assert fast.stats == reference.stats

    def test_annealing_identical_under_both_modes(self):
        app = random_core_graph(20, seed=9)
        mesh = NoCTopology.smallest_mesh_for(20, link_bandwidth=app.total_bandwidth())
        with fastpath.scalar_reference():
            reference = annealing_mapping(app, mesh, seed=4)
        with fastpath.fast_paths():
            fast = annealing_mapping(app, mesh, seed=4)
        assert fast.mapping.placement == reference.mapping.placement
        assert fast.comm_cost == reference.comm_cost
        assert fast.stats == reference.stats

    def test_min_path_routing_identical_under_both_modes(self):
        app = vopd()
        mesh = NoCTopology.smallest_mesh_for(16, link_bandwidth=app.total_bandwidth())
        mapping = nmap_single_path(app, mesh).mapping
        commodities = build_commodities(app, mapping)
        with fastpath.scalar_reference():
            reference = min_path_routing(mesh, commodities)
        with fastpath.fast_paths():
            fast = min_path_routing(mesh, commodities)
        assert fast.paths == reference.paths


class TestSimulatorEquivalence:
    @pytest.mark.parametrize("bandwidth_scale,burst", [(0.05, 1.0), (0.5, 3.0)])
    def test_active_set_matches_full_scan(self, bandwidth_scale, burst):
        app = vopd()
        mesh = NoCTopology.smallest_mesh_for(16, link_bandwidth=app.total_bandwidth())
        mapping = nmap_single_path(app, mesh).mapping
        commodities = build_commodities(app, mapping)
        routing = min_path_routing(mesh, commodities)
        config = SimConfig(
            warmup_cycles=500,
            measure_cycles=4000,
            drain_cycles=500,
            seed=13,
            mean_burst_packets=burst,
        )

        def run(active_set: bool):
            network = build_network(
                mesh, commodities, routing, config, bandwidth_scale=bandwidth_scale
            )
            return Simulator(network, active_set=active_set).run()

        fast = run(True)
        reference = run(False)
        assert fast.stats == reference.stats
        assert fast.packets_created == reference.packets_created
        assert fast.packets_delivered == reference.packets_delivered
        assert fast.per_commodity_latency == reference.per_commodity_latency
        assert fast.per_commodity_jitter == reference.per_commodity_jitter
        assert fast.link_utilization == reference.link_utilization
        assert fast.cycles == reference.cycles
