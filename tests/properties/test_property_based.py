"""Property-based tests (hypothesis) on the core invariants.

These exercise the structural guarantees the algorithms lean on: distances
are a metric, quadrant paths are minimal, routing conserves flow, swap
deltas are exact, min-congestion respects cut lower bounds, and the MCF LPs
never beat physically impossible values.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.graphs.commodities import Commodity, build_commodities
from repro.graphs.quadrant import count_minimal_paths, quadrant_links
from repro.graphs.random_graphs import random_core_graph
from repro.graphs.topology import NoCTopology
from repro.mapping.base import Mapping
from repro.metrics.comm_cost import comm_cost, swap_cost_delta
from repro.routing.min_path import min_path_routing
from repro.routing.split import solve_min_congestion

# Strategies ------------------------------------------------------------
mesh_dims = st.tuples(st.integers(2, 5), st.integers(2, 5))


@st.composite
def mesh_and_two_nodes(draw):
    width, height = draw(mesh_dims)
    mesh = NoCTopology.mesh(width, height)
    src = draw(st.integers(0, mesh.num_nodes - 1))
    dst = draw(st.integers(0, mesh.num_nodes - 1).filter(lambda n: n != src))
    return mesh, src, dst


@st.composite
def mapped_random_graph(draw):
    num_cores = draw(st.integers(2, 9))
    seed = draw(st.integers(0, 10_000))
    graph = random_core_graph(num_cores, seed=seed)
    mesh = NoCTopology.smallest_mesh_for(num_cores, link_bandwidth=1e9)
    nodes = list(mesh.nodes)
    chosen = draw(
        st.permutations(nodes).map(lambda order: order[:num_cores])
    )
    mapping = Mapping(graph, mesh, dict(zip(graph.cores, chosen)))
    return mapping


# Distance metric --------------------------------------------------------
@given(mesh_and_two_nodes())
@settings(max_examples=60, deadline=None)
def test_distance_symmetric_and_positive(data):
    mesh, src, dst = data
    assert mesh.distance(src, dst) == mesh.distance(dst, src)
    assert mesh.distance(src, dst) >= 1
    assert mesh.distance(src, src) == 0


@given(mesh_dims, st.data())
@settings(max_examples=40, deadline=None)
def test_triangle_inequality(dims, data):
    mesh = NoCTopology.mesh(*dims)
    pick = st.integers(0, mesh.num_nodes - 1)
    a, b, c = data.draw(pick), data.draw(pick), data.draw(pick)
    assert mesh.distance(a, c) <= mesh.distance(a, b) + mesh.distance(b, c)


# Quadrants ---------------------------------------------------------------
@given(mesh_and_two_nodes())
@settings(max_examples=60, deadline=None)
def test_monotone_quadrant_links_decrease_distance(data):
    mesh, src, dst = data
    for u, v in quadrant_links(mesh, src, dst, monotone=True):
        assert mesh.distance(v, dst) == mesh.distance(u, dst) - 1


@given(mesh_and_two_nodes())
@settings(max_examples=60, deadline=None)
def test_minimal_path_count_is_binomial(data):
    import math

    mesh, src, dst = data
    sx, sy = mesh.coords(src)
    dx, dy = mesh.coords(dst)
    across, down = abs(sx - dx), abs(sy - dy)
    assert count_minimal_paths(mesh, src, dst) == math.comb(across + down, across)


# Routing ------------------------------------------------------------------
@given(mapped_random_graph())
@settings(max_examples=25, deadline=None)
def test_min_path_routing_paths_are_minimal_and_loads_consistent(mapping):
    commodities = build_commodities(mapping.core_graph, mapping)
    if not commodities:
        return
    routing = min_path_routing(mapping.topology, commodities)
    for commodity in commodities:
        path = routing.paths[commodity.index]
        assert len(path) - 1 == mapping.topology.distance(
            commodity.src_node, commodity.dst_node
        )
    assert routing.total_flow() >= routing.max_link_load()
    # total flow equals Equation 7's cost for minimal-path routing
    assert abs(routing.total_flow() - comm_cost(mapping)) < 1e-6


@given(mapped_random_graph())
@settings(max_examples=15, deadline=None)
def test_min_congestion_at_most_single_path(mapping):
    commodities = build_commodities(mapping.core_graph, mapping)
    if not commodities:
        return
    single = min_path_routing(mapping.topology, commodities)
    lam, _ = solve_min_congestion(mapping.topology, commodities)
    assert lam <= single.max_link_load() + 1e-6


@given(mapped_random_graph())
@settings(max_examples=15, deadline=None)
def test_min_congestion_respects_node_cut(mapping):
    commodities = build_commodities(mapping.core_graph, mapping)
    if not commodities:
        return
    lam, _ = solve_min_congestion(mapping.topology, commodities)
    topology = mapping.topology
    for node in topology.nodes:
        out_deg = len(topology.neighbors(node))
        sourced = sum(c.value for c in commodities if c.src_node == node)
        sunk = sum(c.value for c in commodities if c.dst_node == node)
        assert lam >= sourced / out_deg - 1e-6
        assert lam >= sunk / out_deg - 1e-6


# Swap delta ----------------------------------------------------------------
@given(mapped_random_graph(), st.data())
@settings(max_examples=40, deadline=None)
def test_swap_delta_matches_recompute(mapping, data):
    nodes = list(mapping.topology.nodes)
    a = data.draw(st.sampled_from(nodes))
    b = data.draw(st.sampled_from([n for n in nodes if n != a]))
    delta = swap_cost_delta(mapping, a, b)
    assert abs(delta - (comm_cost(mapping.swapped(a, b)) - comm_cost(mapping))) < 1e-6


@given(mapped_random_graph(), st.data())
@settings(max_examples=25, deadline=None)
def test_swap_is_involution(mapping, data):
    nodes = list(mapping.topology.nodes)
    a = data.draw(st.sampled_from(nodes))
    b = data.draw(st.sampled_from(nodes))
    twice = mapping.swapped(a, b).swapped(a, b)
    assert twice == mapping


# Random graphs ---------------------------------------------------------------
@given(st.integers(2, 40), st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_random_graphs_connected_and_sized(num_cores, seed):
    graph = random_core_graph(num_cores, seed=seed)
    assert graph.num_cores == num_cores
    assert graph.is_connected()
    assert graph.num_flows >= num_cores - 1
