"""Package-level tests: exports, error hierarchy, cross-module wiring."""

from __future__ import annotations

import pytest

import repro
from repro.errors import (
    BandwidthError,
    DesignError,
    GraphError,
    MappingError,
    ReproError,
    RoutingError,
    SimulationError,
    SolverError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [GraphError, MappingError, RoutingError, SolverError, SimulationError, DesignError],
    )
    def test_all_derive_from_repro_error(self, subclass):
        assert issubclass(subclass, ReproError)

    def test_bandwidth_is_routing_error(self):
        assert issubclass(BandwidthError, RoutingError)

    def test_one_catch_all(self):
        try:
            raise GraphError("boom")
        except ReproError as exc:
            assert "boom" in str(exc)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_exports_resolve(self):
        import repro.apps as apps
        import repro.graphs as graphs
        import repro.mapping as mapping
        import repro.metrics as metrics
        import repro.routing as routing
        import repro.simnoc as simnoc

        for module in (apps, graphs, mapping, metrics, routing, simnoc):
            for name in module.__all__:
                assert getattr(module, name) is not None, f"{module.__name__}.{name}"


class TestCrossModuleWiring:
    def test_network_bandwidth_scale(self, mesh3x3):
        """bandwidth_scale must multiply every source's injection rate."""
        from repro.graphs.commodities import Commodity
        from repro.routing.min_path import min_path_routing
        from repro.simnoc import SimConfig
        from repro.simnoc.network import build_network

        commodities = [Commodity(0, "a", "b", 0, 8, 400.0)]
        routing = min_path_routing(mesh3x3, commodities)
        config = SimConfig()
        base = build_network(mesh3x3, commodities, routing, config)
        scaled = build_network(
            mesh3x3, commodities, routing, config, bandwidth_scale=0.5
        )
        assert scaled.sources[0].rate == pytest.approx(base.sources[0].rate * 0.5)

    def test_experiment_cli_topology(self, capsys):
        from repro.cli import main

        assert main(["experiment", "topology"]) == 0
        assert "torus" in capsys.readouterr().out

    def test_mapping_result_routing_consistency(self, mesh4x4):
        """The routing attached to an NMAP result prices the same mapping."""
        from repro.apps import dsd
        from repro.graphs.commodities import build_commodities
        from repro.mapping import nmap_single_path
        from repro.metrics.comm_cost import comm_cost

        app = dsd()
        mesh = mesh4x4.with_uniform_bandwidth(app.total_bandwidth())
        result = nmap_single_path(app, mesh)
        assert result.routing.total_flow() == pytest.approx(comm_cost(result.mapping))
        commodities = build_commodities(app, result.mapping)
        assert {c.index for c in commodities} == set(result.routing.paths)
