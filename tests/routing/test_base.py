"""Unit tests for :mod:`repro.routing.base` (results, decomposition)."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError
from repro.graphs.commodities import Commodity
from repro.routing.base import RoutingResult, decompose_flows, path_links


def _commodity(index, src, dst, value):
    return Commodity(index, f"s{index}", f"d{index}", src, dst, value)


class TestPathLinks:
    def test_simple(self):
        assert path_links([0, 1, 2]) == [(0, 1), (1, 2)]

    def test_single_node(self):
        assert path_links([5]) == []


class TestFromPaths:
    def test_loads_accumulate(self, mesh3x3):
        commodities = [_commodity(0, 0, 2, 10.0), _commodity(1, 1, 2, 5.0)]
        result = RoutingResult.from_paths(
            mesh3x3, commodities, {0: [0, 1, 2], 1: [1, 2]}, "test"
        )
        assert result.load_of(1, 2) == 15.0
        assert result.load_of(0, 1) == 10.0
        assert result.max_link_load() == 15.0
        assert result.total_flow() == 25.0

    def test_endpoint_mismatch(self, mesh3x3):
        with pytest.raises(RoutingError, match="does not join"):
            RoutingResult.from_paths(
                mesh3x3, [_commodity(0, 0, 2, 1.0)], {0: [0, 1]}, "test"
            )

    def test_missing_path(self, mesh3x3):
        with pytest.raises(RoutingError, match="no path"):
            RoutingResult.from_paths(mesh3x3, [_commodity(0, 0, 2, 1.0)], {}, "test")

    def test_nonexistent_link(self, mesh3x3):
        with pytest.raises(RoutingError, match="missing link"):
            RoutingResult.from_paths(
                mesh3x3, [_commodity(0, 0, 4, 1.0)], {0: [0, 4]}, "test"
            )


class TestFeasibility:
    def test_feasible_under_capacity(self, mesh3x3):
        result = RoutingResult.from_paths(
            mesh3x3, [_commodity(0, 0, 1, 999.0)], {0: [0, 1]}, "test"
        )
        assert result.is_feasible()
        assert result.violations() == {}

    def test_infeasible_over_capacity(self, mesh3x3):
        result = RoutingResult.from_paths(
            mesh3x3, [_commodity(0, 0, 1, 1500.0)], {0: [0, 1]}, "test"
        )
        assert not result.is_feasible()
        assert result.violations() == {(0, 1): pytest.approx(500.0)}

    def test_tolerance(self, mesh3x3):
        result = RoutingResult.from_paths(
            mesh3x3, [_commodity(0, 0, 1, 1000.0000001)], {0: [0, 1]}, "test"
        )
        assert result.is_feasible(tolerance=1e-3)


class TestDecomposition:
    def test_single_path_flow(self, mesh3x3):
        commodity = _commodity(0, 0, 2, 12.0)
        flow = {(0, 1): 12.0, (1, 2): 12.0}
        decomposed = decompose_flows(mesh3x3, commodity, flow)
        assert decomposed == [([0, 1, 2], pytest.approx(1.0))]

    def test_two_way_split(self, mesh3x3):
        commodity = _commodity(0, 0, 4, 10.0)
        flow = {(0, 1): 6.0, (1, 4): 6.0, (0, 3): 4.0, (3, 4): 4.0}
        decomposed = decompose_flows(mesh3x3, commodity, flow)
        fractions = {tuple(path): frac for path, frac in decomposed}
        assert fractions[(0, 1, 4)] == pytest.approx(0.6)
        assert fractions[(0, 3, 4)] == pytest.approx(0.4)

    def test_fractions_sum_to_one(self, mesh3x3):
        commodity = _commodity(0, 0, 8, 9.0)
        flow = {
            (0, 1): 3.0, (1, 2): 3.0, (2, 5): 3.0, (5, 8): 3.0,
            (0, 3): 6.0, (3, 4): 6.0, (4, 5): 4.0, (4, 7): 2.0,
            (7, 8): 2.0, (5, 8): 7.0,
        }
        decomposed = decompose_flows(mesh3x3, commodity, flow)
        assert sum(frac for _p, frac in decomposed) == pytest.approx(1.0)
        for path, _frac in decomposed:
            assert path[0] == 0 and path[-1] == 8

    def test_incomplete_flow_rejected(self, mesh3x3):
        commodity = _commodity(0, 0, 2, 10.0)
        flow = {(0, 1): 4.0, (1, 2): 4.0}  # ships only 4 of 10
        with pytest.raises(RoutingError, match="shipped|dead-ends"):
            decompose_flows(mesh3x3, commodity, flow)

    def test_dead_end_flow_rejected(self, mesh3x3):
        commodity = _commodity(0, 0, 2, 10.0)
        flow = {(0, 1): 10.0}  # never reaches node 2
        with pytest.raises(RoutingError, match="dead-ends|shipped"):
            decompose_flows(mesh3x3, commodity, flow)
