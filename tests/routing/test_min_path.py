"""Unit tests for the load-balancing quadrant heuristic (shortestpath())."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError
from repro.graphs.commodities import Commodity
from repro.routing.base import path_links
from repro.routing.min_path import least_loaded_quadrant_path, min_path_routing


def _commodity(index, src, dst, value=1.0):
    return Commodity(index, f"s{index}", f"d{index}", src, dst, value)


class TestLeastLoadedPath:
    def test_prefers_unloaded_route(self, mesh3x3):
        # 0 -> 4 has two minimal paths: via 1 or via 3; load the via-1 route.
        loads = {(0, 1): 100.0}
        path = least_loaded_quadrant_path(mesh3x3, 0, 4, loads)
        assert path == [0, 3, 4]

    def test_balances_between_equal_paths(self, mesh3x3):
        loads = {(0, 3): 100.0}
        path = least_loaded_quadrant_path(mesh3x3, 0, 4, loads)
        assert path == [0, 1, 4]

    def test_path_always_minimal(self, mesh4x4):
        loads = {(0, 1): 1000.0, (1, 5): 1000.0, (4, 5): 1000.0}
        path = least_loaded_quadrant_path(mesh4x4, 0, 5, loads)
        assert len(path) - 1 == mesh4x4.distance(0, 5)

    def test_same_node_rejected(self, mesh3x3):
        with pytest.raises(RoutingError):
            least_loaded_quadrant_path(mesh3x3, 2, 2, {})

    def test_deterministic_on_ties(self, mesh4x4):
        first = least_loaded_quadrant_path(mesh4x4, 0, 15, {})
        second = least_loaded_quadrant_path(mesh4x4, 0, 15, {})
        assert first == second


class TestMinPathRouting:
    def test_all_paths_minimal(self, mesh4x4):
        commodities = [
            _commodity(0, 0, 15, 10.0),
            _commodity(1, 3, 12, 8.0),
            _commodity(2, 1, 14, 6.0),
        ]
        result = min_path_routing(mesh4x4, commodities)
        for commodity in commodities:
            path = result.paths[commodity.index]
            assert len(path) - 1 == mesh4x4.distance(
                commodity.src_node, commodity.dst_node
            )

    def test_spreads_parallel_demands(self, mesh3x3):
        # two equal flows 0->4: the second should avoid the first's links
        commodities = [_commodity(0, 0, 4, 10.0), _commodity(1, 0, 4, 10.0)]
        result = min_path_routing(mesh3x3, commodities)
        assert result.max_link_load() == 10.0  # split over the two L-routes

    def test_beats_xy_on_max_load(self, mesh3x3):
        from repro.routing.dimension_ordered import xy_routing

        commodities = [_commodity(i, 0, 8, 10.0) for i in range(4)]
        balanced = min_path_routing(mesh3x3, commodities)
        xy = xy_routing(mesh3x3, commodities)
        assert balanced.max_link_load() <= xy.max_link_load()

    def test_processes_heaviest_first(self, mesh3x3):
        # the heavy flow gets the straight route even if listed last
        commodities = [_commodity(0, 0, 4, 1.0), _commodity(1, 0, 4, 100.0)]
        result = min_path_routing(mesh3x3, commodities)
        heavy_path = result.paths[1]
        light_path = result.paths[0]
        assert set(path_links(heavy_path)).isdisjoint(set(path_links(light_path)))

    def test_loads_match_paths(self, mesh4x4):
        commodities = [_commodity(0, 0, 5, 7.0), _commodity(1, 5, 0, 3.0)]
        result = min_path_routing(mesh4x4, commodities)
        recomputed: dict[tuple[int, int], float] = {}
        for commodity in commodities:
            for link in path_links(result.paths[commodity.index]):
                recomputed[link] = recomputed.get(link, 0.0) + commodity.value
        assert recomputed == result.link_loads()

    def test_empty_commodities(self, mesh3x3):
        result = min_path_routing(mesh3x3, [])
        assert result.max_link_load() == 0.0
