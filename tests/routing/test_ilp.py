"""Unit tests for the exact ILP single-path router."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError
from repro.graphs.commodities import Commodity
from repro.routing.base import path_links
from repro.routing.ilp import ilp_single_path_routing
from repro.routing.min_path import min_path_routing


def _commodity(index, src, dst, value):
    return Commodity(index, f"s{index}", f"d{index}", src, dst, value)


class TestIlpRouting:
    def test_single_commodity_trivial(self, mesh3x3):
        load, routing = ilp_single_path_routing(mesh3x3, [_commodity(0, 0, 1, 10.0)])
        assert load == pytest.approx(10.0)
        assert routing.paths[0] == [0, 1]

    def test_parallel_flows_use_disjoint_paths(self, mesh3x3):
        commodities = [_commodity(0, 0, 4, 10.0), _commodity(1, 0, 4, 10.0)]
        load, routing = ilp_single_path_routing(mesh3x3, commodities)
        assert load == pytest.approx(10.0)
        links0 = set(path_links(routing.paths[0]))
        links1 = set(path_links(routing.paths[1]))
        assert links0.isdisjoint(links1)

    def test_paths_are_minimal(self, mesh4x4):
        commodities = [
            _commodity(0, 0, 15, 10.0),
            _commodity(1, 12, 3, 8.0),
            _commodity(2, 0, 3, 6.0),
        ]
        _load, routing = ilp_single_path_routing(mesh4x4, commodities)
        for commodity in commodities:
            path = routing.paths[commodity.index]
            assert len(path) - 1 == mesh4x4.distance(
                commodity.src_node, commodity.dst_node
            )

    def test_never_worse_than_heuristic(self, mesh4x4):
        commodities = [
            _commodity(0, 0, 15, 9.0),
            _commodity(1, 3, 12, 9.0),
            _commodity(2, 1, 14, 5.0),
            _commodity(3, 4, 11, 5.0),
        ]
        heuristic = min_path_routing(mesh4x4, commodities).max_link_load()
        ilp_load, _ = ilp_single_path_routing(mesh4x4, commodities)
        assert ilp_load <= heuristic + 1e-6

    def test_forced_sharing(self, mesh3x3):
        # two flows into the same corner must share one of its two in-links
        commodities = [_commodity(0, 1, 0, 10.0), _commodity(1, 3, 0, 10.0)]
        load, _ = ilp_single_path_routing(mesh3x3, commodities)
        assert load == pytest.approx(10.0)  # each takes its own in-link

    def test_path_limit_enforced(self, mesh4x4):
        with pytest.raises(Exception):  # GraphError via enumerate limit
            ilp_single_path_routing(mesh4x4, [_commodity(0, 0, 15, 1.0)], path_limit=3)

    def test_empty_rejected(self, mesh3x3):
        with pytest.raises(RoutingError):
            ilp_single_path_routing(mesh3x3, [])
