"""Unit tests for channel-dependency-graph deadlock analysis."""

from __future__ import annotations

import pytest

from repro.graphs.commodities import Commodity, build_commodities
from repro.routing.base import RoutingResult
from repro.routing.deadlock import (
    channel_dependency_graph,
    count_dependencies,
    find_cycle,
    is_deadlock_free,
)
from repro.routing.dimension_ordered import xy_routing
from repro.routing.min_path import min_path_routing
from repro.routing.split import solve_min_congestion


def _commodity(index, src, dst, value=10.0):
    return Commodity(index, f"s{index}", f"d{index}", src, dst, value)


class TestCdgConstruction:
    def test_nodes_are_links(self, mesh3x3):
        routing = xy_routing(mesh3x3, [_commodity(0, 0, 8)])
        graph = channel_dependency_graph(routing)
        assert graph.number_of_nodes() == mesh3x3.num_links

    def test_edges_follow_paths(self, mesh3x3):
        routing = RoutingResult.from_paths(
            mesh3x3, [_commodity(0, 0, 2)], {0: [0, 1, 2]}, "t"
        )
        graph = channel_dependency_graph(routing)
        assert graph.has_edge((0, 1), (1, 2))
        assert graph.number_of_edges() == 1

    def test_count_dependencies(self, mesh3x3):
        routing = RoutingResult.from_paths(
            mesh3x3, [_commodity(0, 0, 8)], {0: [0, 1, 2, 5, 8]}, "t"
        )
        assert count_dependencies(routing) == 3


class TestXyDeadlockFreedom:
    def test_all_pairs_xy_is_acyclic(self, mesh4x4):
        """The classical result: dimension-ordered routing cannot deadlock."""
        commodities = [
            _commodity(len_ := i * mesh4x4.num_nodes + j, i, j)
            for i in mesh4x4.nodes
            for j in mesh4x4.nodes
            if i != j
        ]
        # reindex commodities 0..n-1
        commodities = [
            Commodity(k, c.src_core, c.dst_core, c.src_node, c.dst_node, c.value)
            for k, c in enumerate(commodities)
        ]
        routing = xy_routing(mesh4x4, commodities)
        assert is_deadlock_free(routing)

    def test_app_xy_routing_acyclic(self, mesh4x4):
        from repro.apps import vopd
        from repro.mapping import nmap_single_path

        app = vopd()
        mapping = nmap_single_path(app, mesh4x4.with_uniform_bandwidth(1e5)).mapping
        commodities = build_commodities(app, mapping)
        assert is_deadlock_free(xy_routing(mesh4x4, commodities))


class TestCycleDetection:
    def test_hand_built_cycle_found(self, mesh2x2):
        """Four packets turning around the 2x2 ring create the textbook cycle."""
        commodities = [
            _commodity(0, 0, 3),  # will route 0->1->3
            _commodity(1, 1, 2),  # 1->3->2
            _commodity(2, 3, 0),  # 3->2->0
            _commodity(3, 2, 1),  # 2->0->1
        ]
        paths = {0: [0, 1, 3], 1: [1, 3, 2], 2: [3, 2, 0], 3: [2, 0, 1]}
        routing = RoutingResult.from_paths(mesh2x2, commodities, paths, "ring")
        cycle = find_cycle(routing)
        assert cycle is not None
        assert len(cycle) == 4
        assert not is_deadlock_free(routing)

    def test_acyclic_returns_none(self, mesh3x3):
        routing = xy_routing(mesh3x3, [_commodity(0, 0, 8), _commodity(1, 8, 0)])
        assert find_cycle(routing) is None


class TestFaultReroutedPaths:
    """Deadlock analysis over fault-rerouted path sets (satellite of the
    fault-injection subsystem: the CDG audit is mandatory for detours)."""

    def _surviving_routing(self, topology, spec):
        from repro.faults.reroute import fault_reroute
        from repro.faults.spec import FaultSpec
        from repro.graphs.random_graphs import random_core_graph
        from repro.mapping import nmap_single_path

        app = random_core_graph(12, seed=7)
        fabric = topology.with_uniform_bandwidth(app.total_bandwidth())
        degraded = FaultSpec(**spec).apply(fabric)
        mapping = nmap_single_path(app, degraded).mapping
        commodities = build_commodities(app, mapping)
        return fault_reroute(degraded, commodities)

    def test_degraded_mesh_paths_acyclic(self, mesh4x4):
        routing = self._surviving_routing(
            mesh4x4, {"failed_links": ((1, 2), (9, 13))}
        )
        assert find_cycle(routing) is None
        assert is_deadlock_free(routing)

    def test_degraded_torus_paths_acyclic(self):
        from repro.graphs.topology import NoCTopology

        torus = NoCTopology.torus_grid(4, 4)
        routing = self._surviving_routing(torus, {"failed_routers": (5,)})
        assert find_cycle(routing) is None
        assert is_deadlock_free(routing)

    def test_constructed_cycle_rejected_as_fault(self, mesh2x2):
        """A hand-built ring must be found and typed as a FaultError."""
        from repro.errors import FaultError
        from repro.faults.reroute import verify_deadlock_free

        commodities = [
            _commodity(0, 0, 3), _commodity(1, 1, 2),
            _commodity(2, 3, 0), _commodity(3, 2, 1),
        ]
        paths = {0: [0, 1, 3], 1: [1, 3, 2], 2: [3, 2, 0], 3: [2, 0, 1]}
        routing = RoutingResult.from_paths(mesh2x2, commodities, paths, "ring")
        cycle = find_cycle(routing)
        assert cycle is not None
        assert set(cycle) == {(0, 1), (1, 3), (3, 2), (2, 0)}
        with pytest.raises(FaultError, match="channel-dependency cycle"):
            verify_deadlock_free(routing)


class TestSplitRoutingAudit:
    def test_split_flows_analyzable(self, mesh3x3):
        commodities = [_commodity(0, 0, 4, 900.0), _commodity(1, 2, 6, 700.0)]
        _lam, routing = solve_min_congestion(mesh3x3, commodities, quadrant_only=True)
        # quadrant-monotone flows only ever approach their destination, so
        # per-commodity dependencies cannot close a cycle on two commodities
        # heading in perpendicular directions
        assert is_deadlock_free(routing) in (True, False)  # completes
        assert count_dependencies(routing) >= 1

    def test_app_min_path_audit(self, mesh4x4):
        from repro.apps import mwa
        from repro.mapping import nmap_single_path

        app = mwa()
        mapping = nmap_single_path(app, mesh4x4.with_uniform_bandwidth(1e5)).mapping
        commodities = build_commodities(app, mapping)
        routing = min_path_routing(mesh4x4, commodities)
        # the audit must complete and report a concrete verdict
        verdict = is_deadlock_free(routing)
        assert isinstance(verdict, bool)
