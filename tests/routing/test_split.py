"""Unit tests for the multi-commodity-flow solvers (MCF1/MCF2/min-congestion)."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError
from repro.graphs.commodities import Commodity
from repro.graphs.topology import NoCTopology
from repro.routing.split import (
    build_mcf_model,
    solve_mcf1,
    solve_mcf2,
    solve_min_congestion,
)


def _commodity(index, src, dst, value):
    return Commodity(index, f"s{index}", f"d{index}", src, dst, value)


def _check_conservation(routing, commodity, topology):
    """Every node's per-commodity in/out flows must balance (Equation 5)."""
    flow = routing.flows[commodity.index]
    for node in topology.nodes:
        outgoing = sum(v for (u, _w), v in flow.items() if u == node)
        incoming = sum(v for (_u, w), v in flow.items() if w == node)
        expected = 0.0
        if node == commodity.src_node:
            expected = commodity.value
        elif node == commodity.dst_node:
            expected = -commodity.value
        assert outgoing - incoming == pytest.approx(expected, abs=1e-6)


class TestMcfModel:
    def test_variable_count_all_paths(self, mesh2x2):
        commodities = [_commodity(0, 0, 3, 5.0)]
        model = build_mcf_model(mesh2x2, commodities, quadrant_only=False)
        assert model.program.num_vars == mesh2x2.num_links  # one per link

    def test_variable_count_quadrant(self, mesh3x3):
        commodities = [_commodity(0, 0, 1, 5.0)]  # adjacent: single link
        model = build_mcf_model(mesh3x3, commodities, quadrant_only=True)
        assert model.program.num_vars == 1

    def test_empty_commodities_rejected(self, mesh2x2):
        with pytest.raises(RoutingError):
            build_mcf_model(mesh2x2, [])


class TestMcf1:
    def test_zero_slack_when_capacity_suffices(self, mesh3x3):
        slack, routing = solve_mcf1(mesh3x3, [_commodity(0, 0, 8, 100.0)])
        assert slack == pytest.approx(0.0, abs=1e-6)
        assert routing.is_feasible()

    def test_positive_slack_when_overloaded(self, mesh2x2):
        # 3000 MB/s out of node 0 over two 1000 MB/s links: >= 1000 slack
        commodities = [_commodity(0, 0, 3, 3000.0)]
        slack, routing = solve_mcf1(mesh2x2, commodities)
        assert slack >= 1000.0 - 1e-6

    def test_slack_measures_violation_exactly(self, mesh2x2):
        # single commodity 0->1 of 1500 on 1000-capacity links: splitting
        # 0->1 direct and 0->2->3->1 can carry 1000+500 => slack 0
        slack, _ = solve_mcf1(mesh2x2, [_commodity(0, 0, 1, 1500.0)])
        assert slack == pytest.approx(0.0, abs=1e-6)

    def test_conservation_holds(self, mesh3x3):
        commodities = [_commodity(0, 0, 8, 500.0), _commodity(1, 2, 6, 300.0)]
        _slack, routing = solve_mcf1(mesh3x3, commodities)
        for commodity in commodities:
            _check_conservation(routing, commodity, mesh3x3)


class TestMcf2:
    def test_cost_equals_manhattan_when_loose(self, mesh3x3):
        commodities = [_commodity(0, 0, 8, 10.0)]
        cost, routing = solve_mcf2(mesh3x3, commodities)
        assert cost == pytest.approx(40.0)  # 4 hops x 10
        assert routing.total_flow() == pytest.approx(40.0)

    def test_cost_exceeds_manhattan_when_tight(self):
        mesh = NoCTopology.mesh(2, 2, link_bandwidth=1000.0)
        # 1500 from 0 to 1: 1000 direct (1 hop) + 500 the long way (3 hops)
        cost, routing = solve_mcf2(mesh, [_commodity(0, 0, 1, 1500.0)])
        assert cost == pytest.approx(1000.0 + 3 * 500.0)
        assert routing.is_feasible()

    def test_none_when_infeasible(self, mesh2x2):
        result = solve_mcf2(mesh2x2, [_commodity(0, 0, 3, 3000.0)])
        assert result is None

    def test_quadrant_only_restricts_to_min_paths(self, mesh3x3):
        commodities = [_commodity(0, 0, 4, 800.0)]
        cost, routing = solve_mcf2(mesh3x3, commodities, quadrant_only=True)
        # all flow on 2-hop minimum paths regardless of split
        assert cost == pytest.approx(1600.0)
        for link in routing.flows[0]:
            assert link in {(0, 1), (1, 4), (0, 3), (3, 4)}

    def test_quadrant_infeasible_but_all_path_feasible(self):
        mesh = NoCTopology.mesh(2, 2, link_bandwidth=1000.0)
        commodities = [_commodity(0, 0, 1, 1500.0)]
        assert solve_mcf2(mesh, commodities, quadrant_only=True) is None
        assert solve_mcf2(mesh, commodities, quadrant_only=False) is not None


class TestMinCongestion:
    def test_single_flow_splits(self, mesh3x3):
        # 900 from 0 to 4 over 2 disjoint min paths -> lambda 450
        lam, routing = solve_min_congestion(
            mesh3x3, [_commodity(0, 0, 4, 900.0)], quadrant_only=True
        )
        assert lam == pytest.approx(450.0)

    def test_all_paths_beats_quadrant(self, mesh3x3):
        commodities = [_commodity(0, 0, 1, 900.0)]
        lam_quadrant, _ = solve_min_congestion(mesh3x3, commodities, quadrant_only=True)
        lam_all, _ = solve_min_congestion(mesh3x3, commodities, quadrant_only=False)
        assert lam_quadrant == pytest.approx(900.0)  # single min path
        assert lam_all < lam_quadrant  # can detour around

    def test_capacities_ignored(self):
        # capacities tiny, but min-congestion reports what is *needed*
        mesh = NoCTopology.mesh(3, 3, link_bandwidth=1.0)
        lam, _ = solve_min_congestion(mesh, [_commodity(0, 0, 4, 500.0)])
        assert lam == pytest.approx(250.0)

    def test_secondary_phase_keeps_lambda(self, mesh3x3):
        commodities = [_commodity(0, 0, 8, 600.0), _commodity(1, 6, 2, 600.0)]
        lam1, routing1 = solve_min_congestion(
            mesh3x3, commodities, minimize_flow_secondary=False
        )
        lam2, routing2 = solve_min_congestion(
            mesh3x3, commodities, minimize_flow_secondary=True
        )
        assert lam2 == pytest.approx(lam1)
        assert routing2.max_link_load() <= lam1 * (1 + 1e-6) + 1e-6
        assert routing2.total_flow() <= routing1.total_flow() + 1e-6

    def test_conservation_in_split_solution(self, mesh3x3):
        commodities = [_commodity(0, 0, 8, 600.0)]
        _lam, routing = solve_min_congestion(mesh3x3, commodities)
        _check_conservation(routing, commodities[0], mesh3x3)

    def test_lower_bound_out_degree(self, mesh3x3):
        # 0 has out-degree 2: lambda >= value / 2 however traffic splits
        lam, _ = solve_min_congestion(mesh3x3, [_commodity(0, 0, 8, 1000.0)])
        assert lam >= 500.0 - 1e-6
