"""Unit tests for routing-table synthesis and the §6 overhead claim."""

from __future__ import annotations

import pytest

from repro.graphs.commodities import Commodity
from repro.routing.base import RoutingResult
from repro.routing.min_path import min_path_routing
from repro.routing.split import solve_min_congestion
from repro.routing.tables import (
    buffer_bits,
    build_routing_tables,
    table_overhead_bits,
    table_overhead_ratio,
)


def _commodity(index, src, dst, value):
    return Commodity(index, f"s{index}", f"d{index}", src, dst, value)


class TestDeterministicTables:
    def test_entries_follow_path(self, mesh3x3):
        commodities = [_commodity(0, 0, 2, 10.0)]
        routing = RoutingResult.from_paths(mesh3x3, commodities, {0: [0, 1, 2]}, "t")
        tables = build_routing_tables(routing)
        assert tables[0].next_hops(0) == [(1, 1.0)]
        assert tables[1].next_hops(0) == [(2, 1.0)]
        assert tables[2].next_hops(0) == []

    def test_deterministic_flag(self, mesh3x3):
        commodities = [_commodity(0, 0, 8, 5.0)]
        routing = min_path_routing(mesh3x3, commodities)
        tables = build_routing_tables(routing)
        assert all(t.is_deterministic() for t in tables.values())

    def test_num_entries(self, mesh3x3):
        commodities = [_commodity(0, 0, 2, 10.0)]
        routing = RoutingResult.from_paths(mesh3x3, commodities, {0: [0, 1, 2]}, "t")
        tables = build_routing_tables(routing)
        assert sum(t.num_entries for t in tables.values()) == 2  # one per hop


class TestSplitTables:
    def test_weights_normalized(self, mesh3x3):
        commodities = [_commodity(0, 0, 4, 800.0)]
        _lam, routing = solve_min_congestion(mesh3x3, commodities, quadrant_only=True)
        tables = build_routing_tables(routing)
        hops = tables[0].next_hops(0)
        assert len(hops) == 2  # split over both L-routes
        assert sum(weight for _n, weight in hops) == pytest.approx(1.0)

    def test_split_tables_not_deterministic(self, mesh3x3):
        commodities = [_commodity(0, 0, 4, 800.0)]
        _lam, routing = solve_min_congestion(mesh3x3, commodities, quadrant_only=True)
        tables = build_routing_tables(routing)
        assert not tables[0].is_deterministic()


class TestOverhead:
    def test_split_costs_more_bits(self, mesh3x3):
        commodities = [_commodity(0, 0, 4, 800.0), _commodity(1, 2, 6, 500.0)]
        single = min_path_routing(mesh3x3, commodities)
        _lam, split = solve_min_congestion(mesh3x3, commodities, quadrant_only=True)
        assert table_overhead_bits(split) >= table_overhead_bits(single)

    def test_buffer_bits(self, mesh3x3):
        # 9 nodes x 5 ports x 4 flits x 32 bits
        assert buffer_bits(mesh3x3, buffer_depth_flits=4, flit_bits=32) == 5760

    def test_paper_claim_under_ten_percent(self, mesh4x4):
        """§6: table bits < 10% of buffer bits even with split routing."""
        from repro.apps import vopd
        from repro.graphs.commodities import build_commodities
        from repro.mapping import nmap_single_path

        app = vopd()
        result = nmap_single_path(app, mesh4x4.with_uniform_bandwidth(10000.0))
        commodities = build_commodities(app, result.mapping)
        _lam, split = solve_min_congestion(
            result.mapping.topology, commodities, quadrant_only=False
        )
        ratio = table_overhead_ratio(split, buffer_depth_flits=8, flit_bits=32)
        assert ratio < 0.10
