"""Unit tests for XY (dimension-ordered) routing."""

from __future__ import annotations

import pytest

from repro.graphs.commodities import Commodity
from repro.routing.dimension_ordered import xy_path, xy_routing


def _commodity(index, src, dst, value=1.0):
    return Commodity(index, f"s{index}", f"d{index}", src, dst, value)


class TestXyPath:
    def test_x_first(self, mesh3x3):
        # 0 (0,0) -> 8 (2,2): east twice, then south twice
        assert xy_path(mesh3x3, 0, 8) == [0, 1, 2, 5, 8]

    def test_pure_x(self, mesh3x3):
        assert xy_path(mesh3x3, 3, 5) == [3, 4, 5]

    def test_pure_y(self, mesh3x3):
        assert xy_path(mesh3x3, 1, 7) == [1, 4, 7]

    def test_westward(self, mesh3x3):
        assert xy_path(mesh3x3, 8, 0) == [8, 7, 6, 3, 0]

    def test_same_node(self, mesh3x3):
        assert xy_path(mesh3x3, 4, 4) == [4]

    def test_path_is_minimal(self, mesh4x4):
        for src in mesh4x4.nodes:
            for dst in mesh4x4.nodes:
                path = xy_path(mesh4x4, src, dst)
                assert len(path) - 1 == mesh4x4.distance(src, dst)

    def test_torus_wraps(self, torus3x3):
        path = xy_path(torus3x3, 0, 2)
        assert path == [0, 2]

    def test_torus_wrap_y(self, torus3x3):
        path = xy_path(torus3x3, 0, 6)
        assert path == [0, 6]


class TestXyRouting:
    def test_deterministic_loads(self, mesh3x3):
        commodities = [_commodity(0, 0, 8, 10.0), _commodity(1, 0, 8, 5.0)]
        result = xy_routing(mesh3x3, commodities)
        # both take the identical XY path and stack on the same links
        assert result.max_link_load() == 15.0

    def test_all_commodities_routed(self, mesh3x3):
        commodities = [_commodity(i, i, 8 - i, 2.0) for i in range(4)]
        result = xy_routing(mesh3x3, commodities)
        assert set(result.paths) == {0, 1, 2, 3}

    def test_total_flow_is_bandwidth_times_hops(self, mesh3x3):
        commodities = [_commodity(0, 0, 8, 10.0)]
        result = xy_routing(mesh3x3, commodities)
        assert result.total_flow() == 40.0  # 4 hops x 10
