"""The partition subsystem: registry ladder, spec contract, JSON round-trip.

Partition specs feed the sharded engine's bit-identity contract, so the
guarantees pinned here are strict: deterministic assignments, dense
non-empty shards, cut edges that really cross, and lossless JSON.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import PartitionError
from repro.graphs.topology import NoCTopology
from repro.partition import (
    PartitionSpec,
    available_partitioners,
    list_partitioners,
    partition_topology,
    partitioner_availability,
    resolve_partitioner,
    spec_from_assignment,
)
from repro.partition.algorithms import metis_module


def mesh(width=4, height=4):
    return NoCTopology.mesh(width, height)


class TestRegistry:
    def test_ladder_order_first(self):
        names = list_partitioners()
        assert names[:3] == ("metis", "greedy-edge", "round-robin")

    def test_availability_rows_shape(self):
        rows = available_partitioners()
        assert [row["name"] for row in rows][:3] == [
            "metis",
            "greedy-edge",
            "round-robin",
        ]
        for row in rows:
            assert isinstance(row["available"], bool)
            assert row["reason"]

    def test_pure_python_rungs_always_available(self):
        for name in ("greedy-edge", "round-robin"):
            available, reason = partitioner_availability(name)
            assert available, reason

    def test_unknown_partitioner_rejected(self):
        with pytest.raises(PartitionError, match="unknown partitioner"):
            partitioner_availability("metis2")
        with pytest.raises(PartitionError, match="unknown partitioner"):
            partition_topology(mesh(), 2, "kl")

    def test_auto_resolves_to_an_available_rung(self):
        name, reason = resolve_partitioner("auto")
        available, _ = partitioner_availability(name)
        assert available
        assert "auto ladder" in reason

    def test_explicit_resolution(self):
        name, reason = resolve_partitioner("round-robin")
        assert name == "round-robin"
        assert reason == "requested explicitly"

    def test_no_metis_env_pins_pure_python(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_METIS", "1")
        available, reason = partitioner_availability("metis")
        assert not available
        assert "REPRO_NO_METIS" in reason
        name, _ = resolve_partitioner("auto")
        assert name == "greedy-edge"
        with pytest.raises(PartitionError, match="unavailable"):
            partition_topology(mesh(), 2, "metis")

    def test_shard_count_bounds(self):
        with pytest.raises(PartitionError, match=">= 1"):
            partition_topology(mesh(), 0)
        with pytest.raises(PartitionError, match="non-empty"):
            partition_topology(mesh(2, 2), 5)


class TestAlgorithms:
    @pytest.mark.parametrize("method", ["greedy-edge", "round-robin"])
    @pytest.mark.parametrize("shards", [1, 2, 3, 4])
    def test_valid_balanced_specs(self, method, shards):
        spec = partition_topology(mesh(), shards, method)
        assert spec.num_shards == shards
        assert spec.num_nodes == 16
        sizes = spec.shard_sizes
        assert sum(sizes) == 16
        assert max(sizes) - min(sizes) <= 1

    @pytest.mark.parametrize("method", ["greedy-edge", "round-robin"])
    def test_deterministic(self, method):
        first = partition_topology(mesh(8, 8), 4, method)
        second = partition_topology(mesh(8, 8), 4, method)
        assert first == second

    def test_greedy_edge_beats_round_robin_on_meshes(self):
        greedy = partition_topology(mesh(8, 8), 4, "greedy-edge")
        rr = partition_topology(mesh(8, 8), 4, "round-robin")
        assert greedy.edge_cut < rr.edge_cut

    def test_greedy_edge_regions_are_contiguous(self):
        topology = mesh(8, 8)
        spec = partition_topology(topology, 4, "greedy-edge")
        for shard in range(4):
            members = set(spec.shard_nodes(shard))
            seen = {min(members)}
            frontier = [min(members)]
            while frontier:
                node = frontier.pop()
                for neighbor in topology.neighbors(node):
                    if neighbor in members and neighbor not in seen:
                        seen.add(neighbor)
                        frontier.append(neighbor)
            assert seen == members

    def test_round_robin_assignment_shape(self):
        spec = partition_topology(mesh(), 3, "round-robin")
        assert spec.assignment == tuple(i % 3 for i in range(16))

    def test_metis_when_available_else_skip(self):
        module, reason = metis_module()
        if module is None:
            with pytest.raises(PartitionError, match="unavailable"):
                partition_topology(mesh(), 2, "metis")
            pytest.skip(f"metis unavailable here: {reason}")
        spec = partition_topology(mesh(8, 8), 4, "metis")
        assert spec.num_shards == 4
        assert sum(spec.shard_sizes) == 64

    def test_one_shard_is_trivial_everywhere(self):
        for method in ("greedy-edge", "round-robin"):
            spec = partition_topology(mesh(), 1, method)
            assert spec.assignment == (0,) * 16
            assert spec.edge_cut == 0
            assert spec.balance == 1.0


class TestPartitionSpec:
    def test_cut_edges_actually_cross(self):
        spec = partition_topology(mesh(8, 8), 4, "greedy-edge")
        for u, v in spec.cut_edges:
            assert u < v
            assert spec.assignment[u] != spec.assignment[v]

    def test_stats(self):
        spec = partition_topology(mesh(8, 8), 4, "greedy-edge")
        assert spec.edge_cut == len(spec.cut_edges)
        assert 0.0 < spec.cut_fraction < 1.0
        assert spec.balance == pytest.approx(1.0)

    def test_json_round_trip(self):
        spec = partition_topology(
            NoCTopology.torus_grid(4, 4), 3, "round-robin"
        )
        payload = json.loads(json.dumps(spec.to_dict()))
        assert PartitionSpec.from_dict(payload) == spec

    def test_from_dict_rejects_unknown_and_missing_keys(self):
        spec = partition_topology(mesh(), 2, "round-robin")
        payload = spec.to_dict()
        with pytest.raises(PartitionError, match="unknown"):
            PartitionSpec.from_dict({**payload, "color": "red"})
        bad = dict(payload)
        del bad["assignment"]
        with pytest.raises(PartitionError, match="assignment"):
            PartitionSpec.from_dict(bad)

    def test_malformed_assignments_rejected(self):
        topology = mesh(2, 2)
        with pytest.raises(PartitionError):
            # Shard 1 empty: labels must be dense.
            spec_from_assignment(topology, [0, 0, 2, 2], "x")

    def test_shard_nodes(self):
        spec = partition_topology(mesh(), 4, "round-robin")
        assert spec.shard_nodes(1) == (1, 5, 9, 13)


class TestLargeFabricRegression:
    """``TopologySpec``/builders accept large fabrics end to end.

    Guards the 32x32 path: build the topology, partition it, and check the
    spec is structurally sound — the scale the partition subsystem exists
    for.
    """

    def test_build_and_partition_32x32_mesh(self):
        from repro.api import TopologySpec

        spec = TopologySpec.parse("mesh:32x32")
        assert (spec.width, spec.height) == (32, 32)
        topology = NoCTopology.mesh(32, 32)
        assert topology.num_nodes == 1024
        part = partition_topology(topology, 8, "greedy-edge")
        assert part.num_nodes == 1024
        assert sum(part.shard_sizes) == 1024
        assert max(part.shard_sizes) == 128
        assert part.cut_fraction < 0.2

    def test_partition_32x32_torus_round_trip(self):
        topology = NoCTopology.torus_grid(32, 32)
        part = partition_topology(topology, 16, "round-robin")
        assert PartitionSpec.from_dict(part.to_dict()) == part
