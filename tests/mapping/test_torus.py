"""Mapping and routing on torus topologies (the paper's 'mesh/torus' scope)."""

from __future__ import annotations

import pytest

from repro.graphs.commodities import build_commodities
from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology
from repro.mapping import gmap, nmap_single_path, pbb, pmap
from repro.metrics.comm_cost import comm_cost
from repro.routing.dimension_ordered import xy_routing
from repro.routing.min_path import min_path_routing
from repro.routing.split import solve_min_congestion


@pytest.fixture
def torus4x4():
    return NoCTopology.torus_grid(4, 4, link_bandwidth=1e5)


class TestTorusMapping:
    def test_nmap_runs_on_torus(self, torus4x4):
        from repro.apps import vopd

        result = nmap_single_path(vopd(), torus4x4)
        assert result.mapping.is_complete
        assert result.feasible

    def test_torus_cost_at_most_mesh_cost(self, torus4x4):
        """Wrap links can only shorten distances, never lengthen them."""
        from repro.apps import vopd

        app = vopd()
        mesh = NoCTopology.mesh(4, 4, link_bandwidth=1e5)
        mesh_cost = nmap_single_path(app, mesh).comm_cost
        torus_cost = nmap_single_path(app, torus4x4).comm_cost
        assert torus_cost <= mesh_cost

    @pytest.mark.parametrize("algorithm", [gmap, pmap])
    def test_baselines_run_on_torus(self, torus4x4, algorithm):
        from repro.apps import pip

        result = algorithm(pip(), torus4x4)
        assert result.mapping.is_complete

    def test_pbb_runs_on_torus(self, torus4x4):
        from repro.apps import pip

        result = pbb(pip(), torus4x4, max_queue=200)
        assert result.mapping.is_complete


class TestTorusRouting:
    def test_min_path_uses_wrap_links(self, torus4x4):
        from repro.graphs.commodities import Commodity

        commodities = [Commodity(0, "a", "b", 0, 3, 10.0)]  # 1 wrap hop
        routing = min_path_routing(torus4x4, commodities)
        assert routing.paths[0] == [0, 3]

    def test_xy_wrap(self, torus4x4):
        from repro.graphs.commodities import Commodity

        commodities = [Commodity(0, "a", "b", 0, 15, 10.0)]
        routing = xy_routing(torus4x4, commodities)
        # (0,0) -> (3,3) on a 4x4 torus: 2 hops via both wraps
        assert len(routing.paths[0]) - 1 == 2

    def test_split_lp_on_torus(self, torus4x4):
        from repro.graphs.commodities import Commodity

        commodities = [Commodity(0, "a", "b", 0, 1, 1000.0)]
        lam, routing = solve_min_congestion(torus4x4, commodities)
        # node 0 has 4 out-links on a torus: lambda >= 250
        assert lam >= 250.0 - 1e-6
        assert lam <= 500.0 + 1e-6  # and splitting beats single-path's 1000

    def test_consistency_cost_vs_routing(self, torus4x4):
        graph = CoreGraph()
        graph.add_traffic("a", "b", 100.0)
        graph.add_traffic("b", "c", 50.0)
        result = nmap_single_path(graph, torus4x4)
        commodities = build_commodities(graph, result.mapping)
        routing = min_path_routing(torus4x4, commodities)
        assert routing.total_flow() == pytest.approx(comm_cost(result.mapping))
