"""Unit tests for the initialize() constructive seed."""

from __future__ import annotations

import pytest

from repro.errors import MappingError
from repro.graphs.core_graph import CoreGraph
from repro.mapping.initializer import initial_mapping


class TestInitialMapping:
    def test_complete(self, square_graph, mesh2x2):
        mapping = initial_mapping(square_graph, mesh2x2)
        assert mapping.is_complete

    def test_seed_core_on_max_degree_node(self, tiny_graph, mesh3x3):
        # core "b" has max traffic (150); mesh center (node 4) has max degree
        mapping = initial_mapping(tiny_graph, mesh3x3)
        assert mapping.node_of("b") == 4

    def test_heavy_pair_adjacent(self, mesh3x3):
        graph = CoreGraph()
        graph.add_traffic("hot1", "hot2", 1000.0)
        graph.add_traffic("hot1", "cold", 1.0)
        mapping = initial_mapping(graph, mesh3x3)
        assert mesh3x3.distance(mapping.node_of("hot1"), mapping.node_of("hot2")) == 1

    def test_deterministic(self, square_graph, mesh3x3):
        a = initial_mapping(square_graph, mesh3x3)
        b = initial_mapping(square_graph, mesh3x3)
        assert a == b

    def test_empty_graph_rejected(self, mesh2x2):
        with pytest.raises(MappingError, match="empty"):
            initial_mapping(CoreGraph(), mesh2x2)

    def test_single_core(self, mesh3x3):
        graph = CoreGraph()
        graph.add_core("solo")
        mapping = initial_mapping(graph, mesh3x3)
        assert mapping.is_complete
        assert mapping.node_of("solo") == 4  # center seed

    def test_disconnected_components_all_mapped(self, mesh3x3):
        graph = CoreGraph()
        graph.add_traffic("a", "b", 100.0)
        graph.add_traffic("x", "y", 50.0)  # no link to a/b
        mapping = initial_mapping(graph, mesh3x3)
        assert mapping.is_complete

    def test_fills_exact_mesh(self, mesh2x2, square_graph):
        mapping = initial_mapping(square_graph, mesh2x2)
        assert mapping.free_nodes() == []

    def test_chain_stays_compact(self, mesh4x4):
        graph = CoreGraph()
        for i in range(6):
            graph.add_traffic(f"c{i}", f"c{i+1}", 100.0)
        mapping = initial_mapping(graph, mesh4x4)
        # every consecutive pair should land on adjacent nodes
        for i in range(6):
            dist = mesh4x4.distance(
                mapping.node_of(f"c{i}"), mapping.node_of(f"c{i+1}")
            )
            assert dist == 1
