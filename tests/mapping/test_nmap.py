"""Unit tests for NMAP with single minimum-path routing."""

from __future__ import annotations

import itertools

import pytest

from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology
from repro.mapping.nmap import evaluate_single_path, nmap_single_path
from repro.metrics.comm_cost import comm_cost, swap_cost_delta


class TestEvaluate:
    def test_cost_matches_equation7(self, square_graph, mesh2x2):
        from repro.mapping.base import Mapping

        mapping = Mapping(square_graph, mesh2x2, {"a": 0, "b": 1, "c": 3, "d": 2})
        cost, routing, feasible = evaluate_single_path(mapping)
        assert feasible
        assert cost == comm_cost(mapping)

    def test_infeasible_returns_maxvalue(self, square_graph):
        from repro.mapping.base import Mapping

        mesh = NoCTopology.mesh(2, 2, link_bandwidth=10.0)
        mapping = Mapping(square_graph, mesh, {"a": 0, "b": 1, "c": 3, "d": 2})
        cost, _routing, feasible = evaluate_single_path(mapping)
        assert not feasible
        assert cost == float("inf")


class TestNmap:
    def test_complete_and_feasible(self, square_graph, mesh2x2):
        result = nmap_single_path(square_graph, mesh2x2)
        assert result.mapping.is_complete
        assert result.feasible
        assert result.algorithm == "nmap"

    def test_optimal_on_cycle(self, square_graph, mesh2x2):
        # a-b-c-d cycle on a 2x2 mesh: optimum places the cycle around the
        # square, every edge at distance 1 -> cost = sum of bandwidths.
        result = nmap_single_path(square_graph, mesh2x2)
        assert result.comm_cost == square_graph.total_bandwidth()

    def test_improves_or_matches_seed(self, mesh4x4):
        from repro.apps import vopd
        from repro.mapping.initializer import initial_mapping

        app = vopd()
        mesh = mesh4x4.with_uniform_bandwidth(10000.0)
        seed_cost = comm_cost(initial_mapping(app, mesh))
        result = nmap_single_path(app, mesh)
        assert result.comm_cost <= seed_cost

    def test_local_optimum_no_improving_swap(self, mesh3x3):
        from repro.apps import pip

        app = pip()
        mesh = mesh3x3.with_uniform_bandwidth(10000.0)
        result = nmap_single_path(app, mesh)
        mapping = result.mapping
        for a, b in itertools.combinations(range(mesh.num_nodes), 2):
            assert swap_cost_delta(mapping, a, b) >= -1e-9

    def test_single_pass_mode(self, mesh3x3):
        from repro.apps import pip

        app = pip()
        mesh = mesh3x3.with_uniform_bandwidth(10000.0)
        one_pass = nmap_single_path(app, mesh, max_passes=1)
        full = nmap_single_path(app, mesh)
        assert one_pass.stats["passes"] == 1
        assert full.comm_cost <= one_pass.comm_cost

    def test_no_improve_keeps_seed(self, square_graph, mesh2x2):
        from repro.mapping.initializer import initial_mapping

        seed = initial_mapping(square_graph, mesh2x2)
        result = nmap_single_path(square_graph, mesh2x2, improve=False)
        assert result.mapping == seed

    def test_respects_bandwidth_constraints(self):
        # two heavy flows out of one core; tight capacity forces a feasible
        # arrangement (heavy edges on distinct links)
        graph = CoreGraph()
        graph.add_traffic("hub", "x", 900.0)
        graph.add_traffic("hub", "y", 900.0)
        graph.add_traffic("x", "y", 100.0)
        mesh = NoCTopology.mesh(2, 2, link_bandwidth=1000.0)
        result = nmap_single_path(graph, mesh)
        assert result.feasible
        assert result.routing.is_feasible()

    def test_infeasible_reports_inf(self):
        graph = CoreGraph()
        graph.add_traffic("a", "b", 5000.0)
        mesh = NoCTopology.mesh(2, 2, link_bandwidth=1000.0)
        result = nmap_single_path(graph, mesh)
        assert not result.feasible
        assert result.comm_cost == float("inf")

    def test_trivially_feasible_skips_routing(self, square_graph):
        mesh = NoCTopology.mesh(2, 2, link_bandwidth=1e9)
        result = nmap_single_path(square_graph, mesh)
        assert result.stats["routings_run"] == 0
        assert result.routing is not None  # final routing still reported

    def test_more_nodes_than_cores(self, tiny_graph, mesh3x3):
        result = nmap_single_path(tiny_graph, mesh3x3)
        assert result.mapping.is_complete
        assert len(result.mapping.free_nodes()) == 6

    def test_deterministic(self, mesh4x4):
        from repro.apps import mwa

        app = mwa()
        mesh = mesh4x4.with_uniform_bandwidth(10000.0)
        r1 = nmap_single_path(app, mesh)
        r2 = nmap_single_path(app, mesh)
        assert r1.mapping == r2.mapping
        assert r1.comm_cost == r2.comm_cost
