"""Unit tests for HMAP, the partition-aware hierarchical mapper."""

from __future__ import annotations

import pytest

from repro.api import get_mapper, list_mappers
from repro.api.options import HmapOptions
from repro.apps import vopd
from repro.errors import ApiError, MappingError
from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology
from repro.mapping.hmap import hmap


class TestHmap:
    def test_complete_and_valid(self, square_graph, mesh3x3):
        result = hmap(square_graph, mesh3x3)
        assert result.mapping.is_complete
        assert result.algorithm == "hmap"
        placed = [result.mapping.node_of(c) for c in square_graph.cores]
        assert len(set(placed)) == len(placed)

    def test_deterministic(self, square_graph, mesh4x4):
        first = hmap(square_graph, mesh4x4)
        second = hmap(square_graph, mesh4x4)
        assert first.mapping == second.mapping
        assert first.comm_cost == second.comm_cost

    def test_vopd_feasible(self):
        app = vopd()
        mesh = NoCTopology.smallest_mesh_for(
            16, link_bandwidth=app.total_bandwidth()
        )
        result = hmap(app, mesh)
        assert result.mapping.is_complete
        assert result.feasible
        assert result.comm_cost < float("inf")

    @pytest.mark.parametrize("regions", [1, 2, 4])
    def test_explicit_region_counts(self, regions):
        app = vopd()
        mesh = NoCTopology.smallest_mesh_for(
            16, link_bandwidth=app.total_bandwidth()
        )
        result = hmap(app, mesh, regions=regions)
        assert result.mapping.is_complete

    def test_partitioner_choice(self, square_graph, mesh4x4):
        for method in ("greedy-edge", "round-robin"):
            result = hmap(square_graph, mesh4x4, partitioner=method)
            assert result.mapping.is_complete

    def test_refine_never_hurts(self):
        app = vopd()
        mesh = NoCTopology.smallest_mesh_for(
            16, link_bandwidth=app.total_bandwidth()
        )
        refined = hmap(app, mesh, refine=True)
        unrefined = hmap(app, mesh, refine=False)
        assert refined.comm_cost <= unrefined.comm_cost

    def test_avoids_failed_routers(self, square_graph):
        mesh = NoCTopology.mesh(3, 3, link_bandwidth=1000.0).with_failed_routers(
            (4,)
        )
        result = hmap(square_graph, mesh)
        used = {result.mapping.node_of(c) for c in square_graph.cores}
        assert 4 not in used

    def test_empty_rejected(self, mesh2x2):
        with pytest.raises(MappingError):
            hmap(CoreGraph(), mesh2x2)

    def test_more_cores_than_nodes_rejected(self, mesh2x2):
        graph = CoreGraph()
        for i in range(5):
            graph.add_traffic(f"c{i}", f"c{(i + 1) % 5}", 10.0)
        with pytest.raises(MappingError):
            hmap(graph, mesh2x2)


class TestHmapRegistry:
    def test_registered(self):
        assert "hmap" in list_mappers()
        entry = get_mapper("hmap")
        assert entry.options_type is HmapOptions
        assert not entry.seedable

    def test_runs_via_registry(self, square_graph, mesh3x3):
        entry = get_mapper("hmap")
        result = entry.run(square_graph, mesh3x3)
        assert result.mapping.is_complete
        typed = entry.run(
            square_graph, mesh3x3, HmapOptions(regions=2, refine=False)
        )
        assert typed.mapping.is_complete

    def test_options_validation(self):
        with pytest.raises(ApiError, match="regions"):
            HmapOptions(regions=0).validate()
        with pytest.raises(ApiError, match="partitioner"):
            HmapOptions(partitioner="kl").validate()
        HmapOptions(partitioner="round-robin").validate()

    def test_options_round_trip(self):
        options = HmapOptions(regions=3, partitioner="greedy-edge", refine=False)
        assert HmapOptions.from_dict(options.to_dict()) == options
        with pytest.raises(ApiError, match="unknown"):
            HmapOptions.from_dict({"shards": 2})
