"""Unit tests for the PMAP, GMAP and random baselines."""

from __future__ import annotations

import pytest

from repro.errors import MappingError
from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology
from repro.mapping.gmap import gmap
from repro.mapping.pmap import pmap
from repro.mapping.random_map import random_mapping


class TestGmap:
    def test_complete(self, square_graph, mesh2x2):
        result = gmap(square_graph, mesh2x2)
        assert result.mapping.is_complete
        assert result.algorithm == "gmap"

    def test_heaviest_core_placed_first_near_center(self, mesh3x3):
        graph = CoreGraph()
        graph.add_traffic("hub", "a", 500.0)
        graph.add_traffic("hub", "b", 500.0)
        graph.add_traffic("a", "b", 1.0)
        result = gmap(graph, mesh3x3)
        assert result.mapping.node_of("hub") == 4  # center

    def test_empty_rejected(self, mesh2x2):
        with pytest.raises(MappingError):
            gmap(CoreGraph(), mesh2x2)

    def test_deterministic(self, square_graph, mesh3x3):
        assert gmap(square_graph, mesh3x3).mapping == gmap(square_graph, mesh3x3).mapping

    def test_infeasible_cost_inf(self):
        graph = CoreGraph()
        graph.add_traffic("a", "b", 9000.0)
        result = gmap(graph, NoCTopology.mesh(2, 2, link_bandwidth=100.0))
        assert result.comm_cost == float("inf")
        assert not result.feasible


class TestPmap:
    def test_complete(self, square_graph, mesh2x2):
        result = pmap(square_graph, mesh2x2)
        assert result.mapping.is_complete
        assert result.algorithm == "pmap"

    def test_seed_in_corner(self, square_graph, mesh3x3):
        result = pmap(square_graph, mesh3x3)
        # PMAP's characteristic corner seed (node 0)
        heaviest = max(square_graph.cores, key=square_graph.core_traffic)
        assert result.mapping.node_of(heaviest) == 0

    def test_region_is_contiguous(self, mesh4x4):
        graph = CoreGraph()
        for i in range(5):
            graph.add_traffic(f"c{i}", f"c{i+1}", 100.0 - i)
        result = pmap(graph, mesh4x4)
        used = sorted(result.mapping.used_nodes())
        # each used node (after the first) touches another used node
        for node in used:
            if node == used[0]:
                continue
            assert any(
                other in mesh4x4.neighbors(node) for other in used if other != node
            )

    def test_empty_rejected(self, mesh2x2):
        with pytest.raises(MappingError):
            pmap(CoreGraph(), mesh2x2)

    def test_deterministic(self, square_graph, mesh3x3):
        assert pmap(square_graph, mesh3x3).mapping == pmap(square_graph, mesh3x3).mapping


class TestRandomMapping:
    def test_complete_and_valid(self, square_graph, mesh3x3):
        result = random_mapping(square_graph, mesh3x3, seed=42)
        assert result.mapping.is_complete

    def test_seed_determinism(self, square_graph, mesh3x3):
        a = random_mapping(square_graph, mesh3x3, seed=5)
        b = random_mapping(square_graph, mesh3x3, seed=5)
        c = random_mapping(square_graph, mesh3x3, seed=6)
        assert a.mapping == b.mapping
        assert a.mapping != c.mapping or a.comm_cost == c.comm_cost

    def test_empty_rejected(self, mesh2x2):
        with pytest.raises(MappingError):
            random_mapping(CoreGraph(), mesh2x2)
