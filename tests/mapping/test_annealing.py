"""Unit tests for the simulated-annealing mapper extension."""

from __future__ import annotations

import pytest

from repro.errors import MappingError
from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology
from repro.mapping.annealing import annealing_mapping
from repro.mapping.exhaustive import exhaustive_best_mapping
from repro.mapping.initializer import initial_mapping
from repro.metrics.comm_cost import comm_cost


class TestAnnealing:
    def test_complete_and_feasible(self, square_graph, mesh2x2):
        result = annealing_mapping(square_graph, mesh2x2, seed=1)
        assert result.mapping.is_complete
        assert result.feasible
        assert result.algorithm == "annealing"

    def test_reaches_optimum_on_tiny_instance(self, square_graph, mesh2x2):
        oracle = exhaustive_best_mapping(square_graph, mesh2x2)
        result = annealing_mapping(square_graph, mesh2x2, seed=3)
        assert result.comm_cost == pytest.approx(oracle.comm_cost)

    def test_never_worse_than_seed(self, mesh4x4):
        from repro.apps import vopd

        app = vopd()
        mesh = mesh4x4.with_uniform_bandwidth(1e5)
        seed_cost = comm_cost(initial_mapping(app, mesh))
        result = annealing_mapping(app, mesh, seed=7)
        assert result.comm_cost <= seed_cost

    def test_deterministic_per_seed(self, square_graph, mesh3x3):
        a = annealing_mapping(square_graph, mesh3x3, seed=5)
        b = annealing_mapping(square_graph, mesh3x3, seed=5)
        assert a.mapping == b.mapping
        assert a.comm_cost == b.comm_cost

    def test_stats_recorded(self, square_graph, mesh2x2):
        result = annealing_mapping(square_graph, mesh2x2, seed=1)
        assert result.stats["moves_attempted"] > 0
        assert result.stats["moves_accepted"] > 0
        assert result.stats["final_temperature"] > 0

    def test_empty_rejected(self, mesh2x2):
        with pytest.raises(MappingError):
            annealing_mapping(CoreGraph(), mesh2x2)

    def test_bad_cooling_rejected(self, square_graph, mesh2x2):
        with pytest.raises(MappingError, match="cooling"):
            annealing_mapping(square_graph, mesh2x2, cooling=1.5)

    def test_infeasible_reports_inf(self):
        graph = CoreGraph()
        graph.add_traffic("a", "b", 9000.0)
        result = annealing_mapping(graph, NoCTopology.mesh(2, 2, link_bandwidth=10.0))
        assert not result.feasible
        assert result.comm_cost == float("inf")

    def test_matches_pbb_on_pip(self, mesh3x3):
        """Annealing should find the 832 optimum PBB finds on PIP."""
        from repro.apps import pip

        app = pip()
        mesh = mesh3x3.with_uniform_bandwidth(1e5)
        result = annealing_mapping(app, mesh, seed=1)
        assert result.comm_cost <= 960.0  # at least as good as NMAP's optimum
