"""Unit tests for the partial branch-and-bound baseline."""

from __future__ import annotations

import pytest

from repro.errors import MappingError
from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology
from repro.mapping.exhaustive import exhaustive_best_mapping
from repro.mapping.pbb import pbb


class TestPbb:
    def test_complete(self, square_graph, mesh2x2):
        result = pbb(square_graph, mesh2x2)
        assert result.mapping.is_complete
        assert result.algorithm == "pbb"

    def test_optimal_on_tiny_instance(self, square_graph, mesh2x2):
        # With an unconstrained queue the search is exhaustive
        oracle = exhaustive_best_mapping(square_graph, mesh2x2)
        result = pbb(square_graph, mesh2x2, max_queue=100000)
        assert result.comm_cost == pytest.approx(oracle.comm_cost)

    def test_optimal_on_line_graph(self, tiny_graph, mesh3x3):
        oracle = exhaustive_best_mapping(tiny_graph, mesh3x3)
        result = pbb(tiny_graph, mesh3x3, max_queue=100000)
        assert result.comm_cost == pytest.approx(oracle.comm_cost)

    def test_queue_bound_degrades_gracefully(self):
        from repro.graphs.random_graphs import random_core_graph

        graph = random_core_graph(12, seed=3)
        mesh = NoCTopology.smallest_mesh_for(12, link_bandwidth=graph.total_bandwidth())
        wide = pbb(graph, mesh, max_queue=5000)
        narrow = pbb(graph, mesh, max_queue=2)
        assert wide.comm_cost <= narrow.comm_cost
        assert narrow.stats["queue_overflowed"]

    def test_invalid_queue(self, square_graph, mesh2x2):
        with pytest.raises(MappingError, match="max_queue"):
            pbb(square_graph, mesh2x2, max_queue=0)

    def test_empty_rejected(self, mesh2x2):
        with pytest.raises(MappingError):
            pbb(CoreGraph(), mesh2x2)

    def test_cheap_bounds_also_work(self, square_graph, mesh2x2):
        result = pbb(square_graph, mesh2x2, tight_bounds=False, max_queue=100000)
        oracle = exhaustive_best_mapping(square_graph, mesh2x2)
        assert result.comm_cost == pytest.approx(oracle.comm_cost)

    def test_stats_present(self, square_graph, mesh2x2):
        result = pbb(square_graph, mesh2x2)
        assert result.stats["expansions"] > 0
        assert "tight_bounds" in result.stats

    def test_deterministic(self, mesh3x3):
        from repro.graphs.random_graphs import random_core_graph

        graph = random_core_graph(8, seed=9)
        mesh = mesh3x3.with_uniform_bandwidth(graph.total_bandwidth())
        assert pbb(graph, mesh).mapping == pbb(graph, mesh).mapping


class TestExhaustive:
    def test_line_on_2x2(self, tiny_graph, mesh2x2):
        result = exhaustive_best_mapping(tiny_graph, mesh2x2)
        # optimal: a-b and b-c each at distance 1 -> cost 150
        assert result.comm_cost == pytest.approx(150.0)

    def test_square_cycle_cost(self, square_graph, mesh2x2):
        result = exhaustive_best_mapping(square_graph, mesh2x2)
        assert result.comm_cost == pytest.approx(square_graph.total_bandwidth())

    def test_size_guard(self, mesh4x4):
        from repro.graphs.random_graphs import random_core_graph

        graph = random_core_graph(16, seed=1)
        with pytest.raises(MappingError, match="too large"):
            exhaustive_best_mapping(graph, mesh4x4)

    def test_empty_rejected(self, mesh2x2):
        with pytest.raises(MappingError):
            exhaustive_best_mapping(CoreGraph(), mesh2x2)
