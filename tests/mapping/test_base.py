"""Unit tests for the Mapping container."""

from __future__ import annotations

import pytest

from repro.errors import MappingError
from repro.mapping.base import Mapping, MappingResult


class TestAssignment:
    def test_assign_and_lookup(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2)
        mapping.assign("a", 0)
        assert mapping.node_of("a") == 0
        assert mapping.core_at(0) == "a"
        assert mapping.is_mapped("a")
        assert not mapping.is_mapped("b")

    def test_too_many_cores_rejected(self, square_graph):
        from repro.graphs.topology import NoCTopology

        with pytest.raises(MappingError, match=r"\|V\| <= \|U\|"):
            Mapping(square_graph, NoCTopology.mesh(3, 1))

    def test_double_assign_core(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2, {"a": 0})
        with pytest.raises(MappingError, match="already mapped"):
            mapping.assign("a", 1)

    def test_double_assign_node(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2, {"a": 0})
        with pytest.raises(MappingError, match="already hosts"):
            mapping.assign("b", 0)

    def test_unknown_core(self, tiny_graph, mesh2x2):
        with pytest.raises(MappingError, match="unknown core"):
            Mapping(tiny_graph, mesh2x2).assign("ghost", 0)

    def test_node_out_of_range(self, tiny_graph, mesh2x2):
        with pytest.raises(MappingError, match="outside"):
            Mapping(tiny_graph, mesh2x2).assign("a", 99)

    def test_unassign(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2, {"a": 0})
        mapping.unassign("a")
        assert not mapping.is_mapped("a")
        assert mapping.core_at(0) is None

    def test_unassign_unmapped(self, tiny_graph, mesh2x2):
        with pytest.raises(MappingError):
            Mapping(tiny_graph, mesh2x2).unassign("a")

    def test_node_of_unmapped(self, tiny_graph, mesh2x2):
        with pytest.raises(MappingError, match="not mapped"):
            Mapping(tiny_graph, mesh2x2).node_of("a")


class TestSwaps:
    def test_swap_two_cores(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2, {"a": 0, "b": 1})
        mapping.swap_nodes(0, 1)
        assert mapping.node_of("a") == 1
        assert mapping.node_of("b") == 0

    def test_swap_with_empty_node(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2, {"a": 0})
        mapping.swap_nodes(0, 3)
        assert mapping.node_of("a") == 3
        assert mapping.core_at(0) is None

    def test_swap_two_empty_nodes(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2, {"a": 0})
        mapping.swap_nodes(1, 2)  # no-op, must not corrupt anything
        assert mapping.node_of("a") == 0

    def test_swapped_leaves_original(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2, {"a": 0, "b": 1})
        clone = mapping.swapped(0, 1)
        assert mapping.node_of("a") == 0
        assert clone.node_of("a") == 1

    def test_swap_invalid_node(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2)
        with pytest.raises(MappingError):
            mapping.swap_nodes(0, 7)


class TestQueriesAndConversion:
    def test_completeness(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2, {"a": 0, "b": 1})
        assert not mapping.is_complete
        mapping.assign("c", 2)
        assert mapping.is_complete
        mapping.validate()  # must not raise

    def test_validate_incomplete(self, tiny_graph, mesh2x2):
        with pytest.raises(MappingError, match="not mapped"):
            Mapping(tiny_graph, mesh2x2, {"a": 0}).validate()

    def test_free_nodes_sorted(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2, {"a": 2})
        assert mapping.free_nodes() == [0, 1, 3]
        assert mapping.used_nodes() == {2}

    def test_placement_copy(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2, {"a": 0})
        placement = mapping.placement
        placement["a"] = 3
        assert mapping.node_of("a") == 0

    def test_node_contents(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2, {"a": 1})
        assert mapping.node_contents == {0: None, 1: "a", 2: None, 3: None}

    def test_from_node_list(self, tiny_graph, mesh2x2):
        mapping = Mapping.from_node_list(tiny_graph, mesh2x2, ["b", None, "a", "c"])
        assert mapping.node_of("b") == 0
        assert mapping.node_of("a") == 2

    def test_equality(self, tiny_graph, mesh2x2):
        m1 = Mapping(tiny_graph, mesh2x2, {"a": 0, "b": 1})
        m2 = Mapping(tiny_graph, mesh2x2, {"a": 0, "b": 1})
        m3 = Mapping(tiny_graph, mesh2x2, {"a": 1, "b": 0})
        assert m1 == m2
        assert m1 != m3

    def test_render_grid(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2, {"a": 0, "b": 3})
        grid = mapping.render()
        assert grid.count("\n") == 1  # two rows
        assert "a" in grid and "b" in grid and "." in grid

    def test_copy_independent(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2, {"a": 0})
        clone = mapping.copy()
        clone.assign("b", 1)
        assert not mapping.is_mapped("b")


class TestMappingResult:
    def test_repr_finite(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2, {"a": 0, "b": 1, "c": 2})
        result = MappingResult(mapping, 123.0, True, "nmap")
        assert "123" in repr(result)

    def test_repr_infinite(self, tiny_graph, mesh2x2):
        mapping = Mapping(tiny_graph, mesh2x2)
        result = MappingResult(mapping, float("inf"), False, "nmap")
        assert "inf" in repr(result)
