"""Unit tests for NMAP with traffic splitting (mappingwithsplitting())."""

from __future__ import annotations

import pytest

from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology
from repro.mapping.nmap import nmap_single_path
from repro.mapping.nmap_split import nmap_with_splitting
from repro.metrics.comm_cost import comm_cost


class TestNmapSplit:
    def test_feasible_when_loose(self, square_graph):
        mesh = NoCTopology.mesh(2, 2, link_bandwidth=1e6)
        result = nmap_with_splitting(square_graph, mesh)
        assert result.feasible
        assert result.algorithm == "nmap-ta"
        assert result.mapping.is_complete

    def test_cost_equals_manhattan_when_loose(self, square_graph):
        # With loose capacities MCF2 routes everything on min paths, so the
        # split cost equals Equation 7 of the same mapping.
        mesh = NoCTopology.mesh(2, 2, link_bandwidth=1e6)
        result = nmap_with_splitting(square_graph, mesh)
        assert result.comm_cost == pytest.approx(comm_cost(result.mapping))

    def test_splitting_rescues_infeasible_single_path(self):
        # 1500 MB/s between two cores, 1000 MB/s links: single-path cannot
        # satisfy (any single link is over capacity), splitting can.
        graph = CoreGraph()
        graph.add_traffic("a", "b", 1500.0)
        mesh = NoCTopology.mesh(2, 2, link_bandwidth=1000.0)
        single = nmap_single_path(graph, mesh)
        split = nmap_with_splitting(graph, mesh, quadrant_only=False)
        assert not single.feasible
        assert split.feasible
        assert split.routing.is_feasible()

    def test_quadrant_variant_cannot_rescue_adjacent(self):
        # NMAPTM only uses minimum paths; for adjacent placement there is a
        # single min path, but at distance 2 there are two, so the mapper
        # must separate the pair to satisfy the constraint.
        graph = CoreGraph()
        graph.add_traffic("a", "b", 1500.0)
        mesh = NoCTopology.mesh(2, 2, link_bandwidth=1000.0)
        result = nmap_with_splitting(graph, mesh, quadrant_only=True)
        assert result.algorithm == "nmap-tm"
        if result.feasible:
            nodes = result.mapping
            assert mesh.distance(nodes.node_of("a"), nodes.node_of("b")) == 2

    def test_infeasible_reports_inf(self):
        graph = CoreGraph()
        graph.add_traffic("a", "b", 9000.0)
        mesh = NoCTopology.mesh(2, 2, link_bandwidth=1000.0)
        result = nmap_with_splitting(graph, mesh)
        assert not result.feasible
        assert result.comm_cost == float("inf")
        assert result.routing is not None  # MCF1 flows kept for diagnosis

    def test_split_cost_at_least_single_path_cost(self, square_graph):
        # MCF2's optimum is lower-bounded by the hop-weighted cost, and NMAP
        # single-path optimizes exactly that bound: split never does better.
        mesh = NoCTopology.mesh(2, 2, link_bandwidth=1e6)
        single = nmap_single_path(square_graph, mesh)
        split = nmap_with_splitting(square_graph, mesh)
        assert split.comm_cost >= single.comm_cost - 1e-6

    def test_stats_recorded(self, square_graph):
        mesh = NoCTopology.mesh(2, 2, link_bandwidth=1e6)
        result = nmap_with_splitting(square_graph, mesh)
        assert result.stats["mcf1_solved"] >= 1
        assert result.stats["mcf2_solved"] >= 1
        assert result.stats["swaps_tried"] == 6  # C(4,2) node pairs

    def test_no_improve_mode(self, square_graph):
        mesh = NoCTopology.mesh(2, 2, link_bandwidth=1e6)
        result = nmap_with_splitting(square_graph, mesh, improve=False)
        assert result.stats["swaps_tried"] == 0
        assert result.feasible

    def test_dsp_split_meets_400(self):
        from repro.apps.dsp import dsp_filter, dsp_mesh

        result = nmap_with_splitting(
            dsp_filter(), dsp_mesh(link_bandwidth=400.0), quadrant_only=False
        )
        assert result.feasible
        assert result.routing.max_link_load() <= 400.0 + 1e-6
