"""The canonical request key: golden stability, cache rewiring, clear races.

The key is a *contract*: the in-process request caches and the service's
persistent result store both key on it, and on-disk entries outlive any
one process — so the exact hex values are pinned here.  If one of these
golden tests fails, a payload field changed shape without a schema bump,
and every deployed store would silently go cold (or worse, with a reused
version, serve stale entries).  Bump ``SCHEMA_VERSION`` and regenerate.
"""

from __future__ import annotations

import threading

import pytest

import repro.api.engine as engine_module
from repro.api import (
    MapRequest,
    SimRequest,
    TopologySpec,
    canonical_request_blob,
    canonical_request_key,
    clear_request_caches,
)
from repro.errors import ApiError

GOLDEN_KEYS = {
    "map-default": (
        MapRequest(app="vopd"),
        "dde677c2067cf1ca43aee8eb0b33a46ddc0d0ada80a95618218eb6bf895abda8",
    ),
    "map-torus-seeded": (
        MapRequest(
            app="mpeg4",
            mapper="annealing",
            topology=TopologySpec.parse("torus:4x4"),
            seed=7,
        ),
        "b90396082af901ead76141b0cfc5212c40ce7849c61fd70d20c9f5b37b48b761",
    ),
    "sim-default": (
        SimRequest(
            map_request=MapRequest(app="dsp", price_bandwidth=False), sim_seed=3
        ),
        "6b4f07581e0507b2db1f892e26187afa33a5ac0e92bb8e346e71dd7a812a93c2",
    ),
}


@pytest.mark.parametrize("label", sorted(GOLDEN_KEYS))
def test_golden_key_values(label):
    request, expected = GOLDEN_KEYS[label]
    assert canonical_request_key(request) == expected


def test_blob_is_compact_sorted_json():
    blob = canonical_request_blob(MapRequest(app="vopd"))
    assert blob.startswith('{"app":"vopd"')
    assert ": " not in blob and ", " not in blob
    assert '"schema":1' in blob


def test_key_is_construction_independent():
    """Python-built and wire-parsed requests share one content address."""
    direct = MapRequest(app="vopd", mapper="gmap")
    parsed = MapRequest.from_dict(direct.to_dict())
    assert canonical_request_key(direct) == canonical_request_key(parsed)


def test_key_distinguishes_payloads():
    base = MapRequest(app="vopd")
    assert canonical_request_key(base) != canonical_request_key(
        MapRequest(app="vopd", mapper="gmap")
    )
    assert canonical_request_key(base) != canonical_request_key(
        MapRequest(app="vopd", price_bandwidth=False)
    )


def test_key_rejects_non_requests():
    with pytest.raises(ApiError):
        canonical_request_key({"kind": "map-request"})  # type: ignore[arg-type]


def test_in_memory_caches_use_canonical_key():
    """The PR-4 caches and the persistent store share one keying scheme."""
    assert engine_module._map_cache_key is canonical_request_key


class TestClearRaceSafety:
    """A thread pounding submissions while another clears must never tear."""

    def test_concurrent_submit_and_clear(self):
        request = MapRequest(app="vopd", price_bandwidth=False)
        reference = engine_module._cached_execute_map(request)[1].comm_cost
        errors: list[BaseException] = []
        stop = threading.Event()

        def pound():
            try:
                while not stop.is_set():
                    _, result = engine_module._cached_execute_map(request)
                    assert result.comm_cost == reference
            except BaseException as exc:  # noqa: BLE001 — recorded for assert
                errors.append(exc)

        threads = [threading.Thread(target=pound) for _ in range(4)]
        for thread in threads:
            thread.start()
        for _ in range(200):
            clear_request_caches()
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        # The caches still work after the storm.
        assert engine_module._cached_execute_map(request)[1].comm_cost == reference
