"""SimOptions validation/round-trips, per-flow responses, batch determinism."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    MapRequest,
    SimOptions,
    SimRequest,
    SimResponse,
    run,
    run_batch,
)
from repro.errors import ApiError


def _sim_request(**options_kwargs) -> SimRequest:
    return SimRequest(
        map_request=MapRequest(app="dsp", price_bandwidth=False),
        measure_cycles=1_500,
        warmup_cycles=300,
        drain_cycles=500,
        options=SimOptions(**options_kwargs),
    )


class TestSimOptionsValidation:
    def test_defaults_are_trace_cycle(self):
        options = SimOptions()
        assert options.engine == "cycle"
        assert options.traffic == "trace"
        assert options.num_vcs == 1

    def test_unknown_engine_rejected(self):
        with pytest.raises(ApiError, match="engine"):
            SimOptions(engine="warp")

    def test_unknown_traffic_rejected(self):
        with pytest.raises(ApiError, match="traffic"):
            SimOptions(traffic="tornado")

    def test_synthetic_needs_injection_rate(self):
        with pytest.raises(ApiError, match="injection_rate"):
            SimOptions(traffic="uniform")

    def test_trace_rejects_injection_rate(self):
        with pytest.raises(ApiError, match="injection_rate"):
            SimOptions(traffic="trace", injection_rate=0.1)

    def test_bad_vcs_rejected(self):
        with pytest.raises(ApiError, match="num_vcs"):
            SimOptions(num_vcs=0)
        with pytest.raises(ApiError, match="vc_buffer_depth"):
            SimOptions(num_vcs=2, vc_buffer_depth=1)

    def test_unknown_payload_key_rejected(self):
        with pytest.raises(ApiError, match="unknown sim option"):
            SimOptions.from_dict({"engnie": "cycle"})

    def test_sharding_knobs_need_the_sharded_engine(self):
        with pytest.raises(ApiError, match="sharded"):
            SimOptions(engine="cycle", shards=2)
        with pytest.raises(ApiError, match="sharded"):
            SimOptions(engine="vector", partitioner="greedy-edge")

    def test_bad_shard_values_rejected(self):
        with pytest.raises(ApiError, match="shards"):
            SimOptions(engine="sharded", shards=0)
        with pytest.raises(ApiError, match="partitioner"):
            SimOptions(engine="sharded", partitioner="kl")

    def test_sharded_engine_accepts_the_knobs(self):
        options = SimOptions(
            engine="sharded", shards=4, partitioner="round-robin"
        )
        assert options.shards == 4
        rebuilt = SimOptions.from_dict(
            json.loads(json.dumps(options.to_dict()))
        )
        assert rebuilt == options

    def test_unset_sharding_knobs_stay_out_of_the_payload(self):
        """Canonical-key stability: requests that never mention sharding
        must serialize exactly as they did before the knobs existed."""
        payload = SimOptions().to_dict()
        assert "shards" not in payload
        assert "partitioner" not in payload

    def test_synthetic_traffic_rejects_explicit_routing(self):
        """Synthetic patterns always route XY; a contradictory routing
        request must fail at build time, not be silently ignored."""
        with pytest.raises(ApiError, match="routes XY"):
            SimRequest(
                map_request=MapRequest(app="dsp", price_bandwidth=False),
                routing="min-path",
                options=SimOptions(traffic="uniform", injection_rate=0.1),
            )


class TestRoundTrips:
    def test_sim_request_with_options_round_trips(self):
        request = _sim_request(engine="event", traffic="onoff",
                               injection_rate=0.07, num_vcs=2, vc_buffer_depth=4)
        rebuilt = SimRequest.from_dict(json.loads(json.dumps(request.to_dict())))
        assert rebuilt == request

    def test_legacy_payload_without_options_still_parses(self):
        """Payloads logged before SimOptions existed must stay readable."""
        payload = _sim_request().to_dict()
        del payload["options"]
        rebuilt = SimRequest.from_dict(payload)
        assert rebuilt.options == SimOptions()

    def test_sim_response_round_trips_with_per_flow(self):
        response = run(_sim_request(engine="event"))
        assert response.per_flow and response.link_flits
        rebuilt = SimResponse.from_dict(json.loads(json.dumps(response.to_dict())))
        assert rebuilt == response


class TestPerFlowStats:
    def test_per_flow_fields_and_histogram_mass(self):
        response = run(_sim_request())
        total = 0
        for stats in response.per_flow.values():
            assert set(stats) == {
                "count", "mean", "p50", "p95", "std", "jitter", "histogram",
            }
            assert sum(stats["histogram"]) == stats["count"]
            total += stats["count"]
        assert total == response.packets_measured

    def test_worst_flow_is_max_mean(self):
        response = run(_sim_request())
        flow, stats = response.worst_flow()
        assert stats["mean"] == max(s["mean"] for s in response.per_flow.values())

    def test_engines_agree_on_per_flow(self):
        cycle = run(_sim_request(engine="cycle"))
        event = run(_sim_request(engine="event"))
        assert cycle.per_flow == event.per_flow
        assert cycle.link_flits == event.link_flits


class TestBatchSeedDeterminism:
    """run_batch regression: worker count must never change any output.

    Every RNG stream derives from the seed carried in the request payload
    plus stable stream indices — shared global state would make the
    fan-out order (and thus the worker count) observable.
    """

    def _requests(self):
        requests: list[MapRequest | SimRequest] = []
        for seed in (1, 2, 3):
            requests.append(
                SimRequest(
                    map_request=MapRequest(app="dsp", price_bandwidth=False),
                    measure_cycles=1_200,
                    warmup_cycles=300,
                    drain_cycles=400,
                    sim_seed=seed,
                )
            )
            requests.append(
                MapRequest(app="pip", mapper="annealing", seed=seed,
                           price_bandwidth=False)
            )
            requests.append(
                SimRequest(
                    map_request=MapRequest(app="vopd", price_bandwidth=False),
                    measure_cycles=1_200,
                    warmup_cycles=300,
                    drain_cycles=400,
                    sim_seed=seed,
                    options=SimOptions(engine="event", traffic="uniform",
                                       injection_rate=0.05),
                )
            )
        return requests

    def test_workers_1_and_8_identical_payloads(self):
        serial = [r.to_dict() for r in run_batch(self._requests(), workers=1)]
        threaded = [r.to_dict() for r in run_batch(self._requests(), workers=8)]
        assert serial == threaded

    def test_repeated_threaded_runs_identical(self):
        first = [r.to_dict() for r in run_batch(self._requests(), workers=4)]
        second = [r.to_dict() for r in run_batch(self._requests(), workers=4)]
        assert first == second
