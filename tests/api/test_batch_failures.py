"""Batch failure semantics: crash-proof ``run_batch`` across executors.

The contract under test (ARCHITECTURE.md, "batch failure semantics"):

* one bad request never aborts the batch — its slot carries a typed
  :class:`ErrorResponse`, every other slot completes normally;
* the failing slot's payload is *byte-identical* across the serial, thread
  and process executors;
* a process worker that dies (a real crash, not an exception) breaks only
  its own slot: victims are retried in fresh pools, and a deterministic
  crasher is typed ``BatchError`` after bounded retries;
* a retried transient crash reproduces the clean run's payload exactly.

The crash/slow instruments are env-var hooks honored inside the worker
(``REPRO_CRASH_TAG`` et al.); the start method is ``fork`` on Linux, so
``monkeypatch.setenv`` reaches process-pool workers.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    AnnealingOptions,
    BATCH_EXECUTORS,
    ErrorResponse,
    MapRequest,
    MapResponse,
    SimRequest,
    run,
    run_batch,
)
from repro.errors import ApiError

#: A tiny request the chaos hooks leave alone.
GOOD = MapRequest(app="pip", mapper="nmap", price_bandwidth=False)
#: A request whose app payload cannot resolve: raises inside the worker
#: with the same exception class and message on every executor.
RAISING = MapRequest(
    app="/nonexistent/app.json", mapper="nmap", price_bandwidth=False
)


def _payloads(responses):
    return [json.dumps(r.to_dict(), sort_keys=True) for r in responses]


class TestSlotIsolation:
    @pytest.mark.parametrize("executor", BATCH_EXECUTORS)
    def test_raising_request_fails_alone(self, executor):
        responses = run_batch(
            [GOOD, RAISING, GOOD], workers=2, executor=executor
        )
        assert isinstance(responses[0], MapResponse)
        assert isinstance(responses[2], MapResponse)
        error = responses[1]
        assert isinstance(error, ErrorResponse)
        assert error.error == "FileNotFoundError"
        assert error.request == RAISING
        assert responses[0].to_dict() == responses[2].to_dict()

    def test_error_payload_identical_across_executors(self):
        batches = {
            executor: run_batch(
                [GOOD, RAISING, GOOD], workers=2, executor=executor
            )
            for executor in BATCH_EXECUTORS
        }
        reference = _payloads(batches["serial"])
        for executor in ("thread", "process"):
            assert _payloads(batches[executor]) == reference


class TestWorkerCrash:
    def test_crash_mid_batch_breaks_only_its_slot(self, monkeypatch):
        """Regression: a dying process worker used to abort the whole batch."""
        monkeypatch.setenv("REPRO_CRASH_TAG", "boom")
        crasher = MapRequest(
            app="pip", mapper="nmap", price_bandwidth=False, tag="boom"
        )
        responses = run_batch(
            [GOOD, crasher, GOOD], workers=2, executor="process", retries=1
        )
        assert isinstance(responses[0], MapResponse)
        assert isinstance(responses[2], MapResponse)
        error = responses[1]
        assert isinstance(error, ErrorResponse)
        assert error.error == "BatchError"
        assert error.message == (
            "worker process died while running this request (2 attempt(s))"
        )
        assert error.request == crasher
        clean = run(GOOD)
        assert responses[0].to_dict() == clean.to_dict()
        assert responses[2].to_dict() == clean.to_dict()

    def test_isolate_keeps_a_singleton_crasher_off_the_host(self, monkeypatch):
        """``isolate=True`` forces the pool even for a one-request batch.

        Without it the singleton short-circuit would run the request in
        this very process and ``os._exit`` would take the host down — the
        exact hazard a long-lived embedder (the job service) uses the flag
        to rule out.
        """
        monkeypatch.setenv("REPRO_CRASH_TAG", "boom")
        crasher = MapRequest(
            app="pip", mapper="nmap", price_bandwidth=False, tag="boom"
        )
        responses = run_batch(
            [crasher], executor="process", retries=1, isolate=True
        )
        assert isinstance(responses[0], ErrorResponse)
        assert responses[0].error == "BatchError"
        assert "worker process died" in responses[0].message

    def test_crash_plus_timeout_acceptance(self, monkeypatch):
        """One crashing + one timing-out request: every other slot survives,
        and the raise/timeout payloads are executor-independent."""
        monkeypatch.setenv("REPRO_CRASH_TAG", "boom")
        monkeypatch.setenv("REPRO_SLOW_TAG", "slow")
        monkeypatch.setenv("REPRO_SLOW_SECONDS", "2.0")
        crasher = MapRequest(
            app="pip", mapper="nmap", price_bandwidth=False, tag="boom"
        )
        laggard = MapRequest(
            app="pip", mapper="nmap", price_bandwidth=False, tag="slow"
        )
        requests = [GOOD, crasher, laggard, RAISING, GOOD]
        responses = run_batch(
            requests, workers=2, executor="process", timeout=0.8, retries=1
        )
        assert [type(r) for r in responses] == [
            MapResponse, ErrorResponse, ErrorResponse, ErrorResponse, MapResponse
        ]
        assert responses[1].error == "BatchError"  # died
        assert responses[2].error == "BatchError"  # timed out
        assert responses[2].message == "request did not complete within 0.8 s"
        assert responses[3].error == "FileNotFoundError"
        assert responses[0].to_dict() == responses[4].to_dict()

        # the executor-portable failures (timeout, raise) must produce the
        # same payloads on serial and thread executors too (the crash hook
        # is process-only: os._exit has no in-process analogue)
        portable = [GOOD, laggard, RAISING, GOOD]
        want = run_batch(portable, executor="serial", timeout=0.8)
        got = run_batch(portable, workers=2, executor="thread", timeout=0.8)
        assert _payloads(got) == _payloads(want)
        assert want[1].error == "BatchError"
        assert want[1].message == "request did not complete within 0.8 s"
        assert want[2].error == "FileNotFoundError"


class TestRetryDeterminism:
    def test_retried_transient_crash_reproduces_clean_run(
        self, monkeypatch, tmp_path
    ):
        """Satellite: a retried transient failure is byte-identical to a
        clean run — all randomness derives from the request payload."""
        flaky = MapRequest(
            app="pip",
            mapper="annealing",
            options=AnnealingOptions(seed=7),
            price_bandwidth=False,
            tag="flaky",
        )
        requests = [GOOD, flaky, GOOD]
        clean = run_batch(requests, executor="serial")

        monkeypatch.setenv("REPRO_CRASH_TAG", "flaky")
        monkeypatch.setenv("REPRO_CRASH_ONCE", str(tmp_path / "crashed.once"))
        retried = run_batch(
            requests, workers=2, executor="process", retries=2
        )
        assert (tmp_path / "crashed.once").exists()  # it really crashed
        assert not any(isinstance(r, ErrorResponse) for r in retried)
        assert _payloads(retried) == _payloads(clean)


class TestErrorResponseSpec:
    def test_round_trips_losslessly(self):
        error = ErrorResponse(
            request=RAISING, error="FileNotFoundError", message="gone"
        )
        rebuilt = ErrorResponse.from_dict(json.loads(json.dumps(error.to_dict())))
        assert rebuilt == error
        assert rebuilt.describe() == "FileNotFoundError: gone"

    def test_round_trips_sim_requests(self):
        error = ErrorResponse(
            request=SimRequest(map_request=GOOD, measure_cycles=100),
            error="BatchError",
            message="request did not complete within 1.0 s",
        )
        rebuilt = ErrorResponse.from_dict(json.loads(json.dumps(error.to_dict())))
        assert rebuilt == error
        assert isinstance(rebuilt.request, SimRequest)

    def test_validates_field_types(self):
        with pytest.raises(ApiError):
            ErrorResponse(request="not a request", error="X", message="y")


class TestBatchValidation:
    def test_bad_executor_rejected(self):
        with pytest.raises(ApiError, match="executor"):
            run_batch([GOOD], executor="fibers")

    def test_bad_timeout_rejected(self):
        with pytest.raises(ApiError, match="timeout"):
            run_batch([GOOD], timeout=0.0)

    def test_bad_retries_rejected(self):
        with pytest.raises(ApiError, match="retries"):
            run_batch([GOOD], retries=-1)

    def test_bad_workers_rejected(self):
        with pytest.raises(ApiError, match="workers"):
            run_batch([GOOD, GOOD], workers=0)
