"""Engine tests: request execution, batch fan-out, torus end to end."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    MapRequest,
    MapResponse,
    SimOptions,
    SimRequest,
    SimResponse,
    TopologySpec,
    clear_request_caches,
    list_mappers,
    rebuild_mapping,
    run,
    run_batch,
)
from repro.errors import ApiError
from repro.graphs.io import core_graph_to_dict


class TestRunMap:
    @pytest.mark.parametrize("name", list_mappers())
    def test_every_mapper_round_trips_losslessly(self, name):
        """The acceptance loop: request -> run -> to_dict -> from_dict."""
        request = MapRequest(app="pip", mapper=name, price_bandwidth=False)
        response = run(request)
        rebuilt = MapResponse.from_dict(json.loads(json.dumps(response.to_dict())))
        assert rebuilt == response
        assert rebuilt.request == request

    def test_auto_topology_resolved_in_response(self):
        response = run(MapRequest(app="pip", price_bandwidth=False))
        assert response.topology.kind == "mesh"
        assert (response.topology.width, response.topology.height) == (3, 3)
        assert response.topology.link_bandwidth is not None

    def test_torus_end_to_end(self):
        response = run(
            MapRequest(
                app="vopd",
                mapper="nmap",
                topology=TopologySpec.parse("torus:4x4"),
            )
        )
        assert response.feasible
        assert response.topology.kind == "torus"
        assert len(response.placement) == 16
        # Wrap links halve worst-case distances, so the torus mapping must
        # not cost more than the mesh one.
        mesh = run(MapRequest(app="vopd", topology=TopologySpec.parse("mesh:4x4")))
        assert response.comm_cost <= mesh.comm_cost

    def test_bandwidth_pricing_toggle(self):
        priced = run(MapRequest(app="pip"))
        assert priced.min_bw_single is not None
        assert priced.min_bw_split is not None
        unpriced = run(MapRequest(app="pip", price_bandwidth=False))
        assert unpriced.min_bw_single is None

    def test_inline_app_payload(self, tiny_graph):
        response = run(
            MapRequest(app=core_graph_to_dict(tiny_graph), price_bandwidth=False)
        )
        assert response.app_name == "tiny"
        assert response.feasible

    def test_rebuild_mapping_matches_placement(self):
        response = run(MapRequest(app="dsp", price_bandwidth=False))
        mapping = rebuild_mapping(response)
        assert mapping.placement == response.placement
        assert mapping.is_complete

    def test_seed_determinism(self):
        first = run(MapRequest(app="pip", mapper="annealing", seed=5,
                               price_bandwidth=False))
        second = run(MapRequest(app="pip", mapper="annealing", seed=5,
                                price_bandwidth=False))
        assert first.placement == second.placement

    def test_run_rejects_unknown_payload(self):
        with pytest.raises(ApiError):
            run("map please")


class TestRunBatch:
    def test_order_preserved_across_workers(self):
        requests = [
            MapRequest(app="pip", mapper=name, price_bandwidth=False, tag=name)
            for name in ("nmap", "pmap", "gmap", "pbb")
        ]
        responses = run_batch(requests, workers=4)
        assert [r.request.tag for r in responses] == ["nmap", "pmap", "gmap", "pbb"]
        serial = run_batch(requests, workers=1)
        assert [r.comm_cost for r in serial] == [r.comm_cost for r in responses]

    def test_empty_batch(self):
        assert run_batch([]) == []

    def test_bad_worker_count(self):
        with pytest.raises(ApiError):
            run_batch([MapRequest(app="pip")], workers=0)

    def test_mixed_map_and_sim_requests(self):
        map_request = MapRequest(app="dsp", price_bandwidth=False)
        sim_request = SimRequest(map_request=map_request, measure_cycles=2000)
        responses = run_batch([map_request, sim_request], workers=2)
        assert isinstance(responses[0], MapResponse)
        assert isinstance(responses[1], SimResponse)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ApiError, match="executor"):
            run_batch([MapRequest(app="pip")], executor="fiber")


class TestProcessExecutor:
    """``executor="process"`` must be a pure transport change: byte-identical
    responses to serial thread execution, in the same order."""

    def _requests(self):
        return [
            SimRequest(
                map_request=MapRequest(app="dsp", price_bandwidth=False),
                measure_cycles=1_000,
                warmup_cycles=300,
                drain_cycles=400,
                sim_seed=seed,
            )
            for seed in (1, 2)
        ] + [
            SimRequest(
                map_request=MapRequest(app="vopd", price_bandwidth=False),
                measure_cycles=800,
                warmup_cycles=200,
                drain_cycles=300,
                options=SimOptions(
                    engine="vector", traffic="uniform", injection_rate=0.15
                ),
            ),
            MapRequest(app="pip", mapper="annealing", seed=5, price_bandwidth=False),
        ]

    def test_process_pool_matches_serial_byte_for_byte(self):
        serial = [r.to_dict() for r in run_batch(self._requests(), workers=1)]
        forked = [
            r.to_dict()
            for r in run_batch(self._requests(), workers=2, executor="process")
        ]
        assert forked == serial

    def test_process_pool_preserves_order_and_types(self):
        responses = run_batch(self._requests(), workers=2, executor="process")
        assert [type(r).__name__ for r in responses] == [
            "SimResponse", "SimResponse", "SimResponse", "MapResponse",
        ]


class TestReplicaExecutor:
    """``executor="replica"`` must be a pure transport change too: one
    batched kernel invocation, byte-identical responses to serial."""

    def _sweep_requests(self, engine="auto"):
        base_map = MapRequest(
            app="vopd",
            mapper="nmap",
            topology=TopologySpec.parse("mesh:4x4", link_bandwidth=6400.0),
            price_bandwidth=False,
        )
        return [
            SimRequest(
                map_request=base_map,
                measure_cycles=800,
                warmup_cycles=200,
                drain_cycles=400,
                sim_seed=11,
                options=SimOptions(
                    engine=engine, traffic="uniform", injection_rate=rate
                ),
            )
            for rate in (0.05, 0.10, 0.15, 0.20, 0.25, 0.30)
        ]

    def test_replica_matches_serial_byte_for_byte(self):
        serial = [r.to_dict() for r in run_batch(self._sweep_requests(),
                                                 executor="serial")]
        clear_request_caches()
        replica = [r.to_dict() for r in run_batch(self._sweep_requests(),
                                                  executor="replica")]
        assert replica == serial

    def test_incompatible_slots_fall_back_in_place(self):
        """Cycle/event-pinned sims and map requests keep their slots and
        their exact serial payloads around the batched vector ones."""
        requests = self._sweep_requests(engine="vector")[:2]
        requests += self._sweep_requests(engine="cycle")[:1]
        requests.append(MapRequest(app="pip", price_bandwidth=False))
        serial = [r.to_dict() for r in run_batch(requests, executor="serial")]
        clear_request_caches()
        replica = [r.to_dict() for r in run_batch(requests, executor="replica")]
        assert replica == serial

    def test_timeout_rejected(self):
        with pytest.raises(ApiError, match="replica"):
            run_batch(self._sweep_requests(), executor="replica", timeout=5.0)

    def test_empty_batch(self):
        assert run_batch([], executor="replica") == []


class TestRequestCaches:
    """The sweep cache must be invisible in results — only in wall clock."""

    def test_cached_sweep_matches_cold_runs(self):
        """One batch reusing the cached mapping == every point run cold."""
        def sweep_requests():
            return [
                SimRequest(
                    map_request=MapRequest(app="vopd", price_bandwidth=False),
                    measure_cycles=600,
                    warmup_cycles=200,
                    drain_cycles=300,
                    options=SimOptions(
                        engine="auto", traffic="uniform", injection_rate=rate
                    ),
                )
                for rate in (0.02, 0.10, 0.25)
            ]

        clear_request_caches()
        warm = [r.to_dict() for r in run_batch(sweep_requests(), workers=1)]
        cold = []
        for request in sweep_requests():
            clear_request_caches()
            cold.append(run(request).to_dict())
        assert warm == cold

    def test_trace_routing_cache_matches_cold(self):
        def request(routing):
            return SimRequest(
                map_request=MapRequest(app="dsp", price_bandwidth=False),
                measure_cycles=800,
                warmup_cycles=200,
                drain_cycles=300,
                routing=routing,
            )

        for routing in ("auto", "xy", "min-path"):
            clear_request_caches()
            cold = run(request(routing)).to_dict()
            warm = run(request(routing)).to_dict()  # second hit is cached
            assert warm == cold


class TestRunSim:
    def test_sim_round_trip_and_stats(self):
        request = SimRequest(
            map_request=MapRequest(app="dsp", price_bandwidth=False),
            measure_cycles=2000,
        )
        response = run(request)
        assert response.packets_measured > 0
        assert response.latency_mean > 0
        link, utilization = response.hottest_link()
        assert "->" in link and 0 < utilization <= 1.0
        rebuilt = SimResponse.from_dict(json.loads(json.dumps(response.to_dict())))
        assert rebuilt == response

    def test_sim_on_torus_with_xy_routing(self):
        request = SimRequest(
            map_request=MapRequest(
                app="pip",
                topology=TopologySpec.parse("torus:3x3"),
                price_bandwidth=False,
            ),
            measure_cycles=2000,
            routing="xy",
        )
        response = run(request)
        assert response.packets_measured > 0
