"""Registry tests: every advertised mapper resolves, runs, and validates."""

from __future__ import annotations

import pytest

from repro.api import (
    AnnealingOptions,
    NmapOptions,
    PbbOptions,
    get_mapper,
    list_mappers,
    mapper_entries,
    parse_option_assignments,
    register_mapper,
)
from repro.api.registry import with_seed
from repro.errors import ApiError
from repro.graphs.topology import NoCTopology
from repro.mapping.base import MappingResult

ADVERTISED = (
    "nmap",
    "nmap-tm",
    "nmap-ta",
    "pmap",
    "gmap",
    "pbb",
    "annealing",
    "hmap",
)


class TestCatalogue:
    def test_all_advertised_registered_in_order(self):
        assert list_mappers() == ADVERTISED

    def test_entries_have_summaries_and_options(self):
        for entry in mapper_entries():
            assert entry.summary, f"{entry.name} has no summary"
            assert entry.default_options() is not None

    def test_unknown_mapper_lists_known(self):
        with pytest.raises(ApiError, match="nmap-tm"):
            get_mapper("does-not-exist")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ApiError, match="already registered"):
            register_mapper("nmap", options=NmapOptions)(lambda *a, **k: None)


class TestEveryMapperRuns:
    @pytest.mark.parametrize("name", ADVERTISED)
    def test_resolves_and_maps_tiny_app(self, name, tiny_graph):
        mesh = NoCTopology.mesh(2, 2, link_bandwidth=tiny_graph.total_bandwidth())
        result = get_mapper(name).run(tiny_graph, mesh)
        assert isinstance(result, MappingResult)
        assert result.feasible
        assert result.mapping.is_complete
        assert result.comm_cost < float("inf")

    def test_split_variants_pin_quadrant_mode(self, tiny_graph):
        mesh = NoCTopology.mesh(2, 2, link_bandwidth=tiny_graph.total_bandwidth())
        assert get_mapper("nmap-tm").run(tiny_graph, mesh).algorithm == "nmap-tm"
        assert get_mapper("nmap-ta").run(tiny_graph, mesh).algorithm == "nmap-ta"


class TestOptions:
    def test_wrong_type_rejected_at_run(self, tiny_graph):
        mesh = NoCTopology.mesh(2, 2)
        with pytest.raises(ApiError, match="takes"):
            get_mapper("pbb").run(tiny_graph, mesh, NmapOptions())

    def test_options_from_dict_unknown_key(self):
        with pytest.raises(ApiError, match="unknown"):
            get_mapper("pbb").options_from_dict({"queue": 10})

    def test_options_from_dict_validates(self):
        with pytest.raises(ApiError, match="max_queue"):
            get_mapper("pbb").options_from_dict({"max_queue": 0})
        assert get_mapper("pbb").options_from_dict({"max_queue": 5}) == PbbOptions(
            max_queue=5
        )

    def test_options_from_dict_checks_types(self):
        with pytest.raises(ApiError, match="max_queue"):
            get_mapper("pbb").options_from_dict({"max_queue": "many"})
        with pytest.raises(ApiError, match="improve"):
            get_mapper("nmap").options_from_dict({"improve": 1})
        # int is acceptable where float is annotated; None where the union allows it
        entry = get_mapper("annealing")
        assert entry.options_from_dict({"initial_temperature": 5}).initial_temperature == 5
        assert get_mapper("nmap").options_from_dict({"max_passes": None}).max_passes is None

    def test_seedable_flags(self):
        assert get_mapper("annealing").seedable
        assert not get_mapper("nmap").seedable

    def test_with_seed(self):
        assert with_seed(AnnealingOptions(), 9).seed == 9
        with pytest.raises(ApiError, match="no seed"):
            with_seed(NmapOptions(), 9)


class TestOptionAssignments:
    def test_parses_json_scalars(self):
        payload = parse_option_assignments(
            ["max_queue=50", "cooling=0.9", "improve=false", "max_passes=none"]
        )
        assert payload == {
            "max_queue": 50,
            "cooling": 0.9,
            "improve": False,
            "max_passes": None,
        }

    def test_bad_assignment_rejected(self):
        with pytest.raises(ApiError, match="key=value"):
            parse_option_assignments(["cooling"])
