"""JSON round-trip and validation tests for every API payload type."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    SCHEMA_VERSION,
    AnnealingOptions,
    MapRequest,
    MapResponse,
    NmapOptions,
    PbbOptions,
    SimRequest,
    SimResponse,
    TopologySpec,
)
from repro.errors import ApiError


def json_cycle(payload):
    """Force a real trip through the JSON wire format."""
    return json.loads(json.dumps(payload))


class TestTopologySpec:
    @pytest.mark.parametrize(
        "text, kind, width, height",
        [
            ("auto", "auto", None, None),
            ("mesh:4x4", "mesh", 4, 4),
            ("torus:8x8", "torus", 8, 8),
            ("4x2", "mesh", 4, 2),
            ("TORUS:3x5", "torus", 3, 5),
        ],
    )
    def test_parse(self, text, kind, width, height):
        spec = TopologySpec.parse(text)
        assert (spec.kind, spec.width, spec.height) == (kind, width, height)

    @pytest.mark.parametrize("text", ["banana", "mesh:4", "hex:4x4", "mesh:axb", ""])
    def test_parse_rejects(self, text):
        with pytest.raises(ApiError):
            TopologySpec.parse(text)

    def test_describe_is_parse_inverse(self):
        for text in ("auto", "mesh:4x4", "torus:8x8"):
            assert TopologySpec.parse(text).describe() == text

    def test_validation(self):
        with pytest.raises(ApiError):
            TopologySpec(kind="torus")  # missing dims
        with pytest.raises(ApiError):
            TopologySpec(kind="auto", width=4, height=4)
        with pytest.raises(ApiError):
            TopologySpec(kind="mesh", width=0, height=4)
        with pytest.raises(ApiError):
            TopologySpec(link_bandwidth=-1.0)

    def test_round_trip(self):
        spec = TopologySpec.parse("torus:4x4", link_bandwidth=750.0)
        assert TopologySpec.from_dict(json_cycle(spec.to_dict())) == spec

    def test_build_too_small_rejected(self, tiny_graph):
        with pytest.raises(ApiError):
            TopologySpec.parse("mesh:1x2").build(tiny_graph)

    def test_build_torus(self, tiny_graph):
        topology = TopologySpec.parse("torus:2x2").build(tiny_graph)
        assert topology.torus
        assert topology.num_nodes == 4


class TestMapRequest:
    def test_round_trip_plain(self):
        request = MapRequest(app="vopd")
        assert MapRequest.from_dict(json_cycle(request.to_dict())) == request

    def test_round_trip_full(self):
        request = MapRequest(
            app="vopd",
            mapper="annealing",
            topology=TopologySpec.parse("torus:4x4", link_bandwidth=900.0),
            options=AnnealingOptions(cooling=0.9, seed=3),
            seed=11,
            price_bandwidth=False,
            tag="sweep-7",
        )
        rebuilt = MapRequest.from_dict(json_cycle(request.to_dict()))
        assert rebuilt == request
        assert isinstance(rebuilt.options, AnnealingOptions)

    def test_round_trip_inline_app(self, tiny_graph):
        from repro.graphs.io import core_graph_to_dict

        request = MapRequest(app=core_graph_to_dict(tiny_graph), mapper="gmap")
        assert MapRequest.from_dict(json_cycle(request.to_dict())) == request

    def test_unknown_mapper_rejected(self):
        with pytest.raises(ApiError, match="unknown mapper"):
            MapRequest(app="vopd", mapper="quantum")

    def test_wrong_options_type_rejected(self):
        with pytest.raises(ApiError, match="takes"):
            MapRequest(app="vopd", mapper="nmap", options=PbbOptions())

    def test_seed_on_deterministic_rejected(self):
        with pytest.raises(ApiError, match="deterministic"):
            MapRequest(app="vopd", mapper="pmap", seed=1)

    def test_bad_option_value_rejected(self):
        with pytest.raises(ApiError, match="cooling"):
            MapRequest(app="vopd", mapper="annealing", options=AnnealingOptions(cooling=2.0))

    def test_resolved_options_fold_seed(self):
        request = MapRequest(app="vopd", mapper="annealing", seed=42)
        assert request.resolved_options().seed == 42
        defaults = MapRequest(app="vopd", mapper="annealing")
        assert defaults.resolved_options() == AnnealingOptions()

    def test_envelope_checks(self):
        payload = MapRequest(app="vopd").to_dict()
        with pytest.raises(ApiError, match="schema"):
            MapRequest.from_dict({**payload, "schema": SCHEMA_VERSION + 1})
        with pytest.raises(ApiError, match="kind"):
            MapRequest.from_dict({**payload, "kind": "map-response"})
        with pytest.raises(ApiError):
            MapRequest.from_dict("not a dict")

    def test_unknown_option_key_rejected(self):
        payload = MapRequest(app="vopd", mapper="nmap", options=NmapOptions()).to_dict()
        payload["options"]["warp_factor"] = 9
        with pytest.raises(ApiError, match="warp_factor"):
            MapRequest.from_dict(payload)

    def test_mistyped_option_value_rejected(self):
        payload = MapRequest(app="vopd", mapper="annealing").to_dict()
        payload["options"] = {"cooling": "fast"}
        with pytest.raises(ApiError, match="cooling"):
            MapRequest.from_dict(payload)
        payload["options"] = {"seed": None}
        with pytest.raises(ApiError, match="seed"):
            MapRequest.from_dict(payload)

    def test_missing_required_field_raises_api_error(self):
        with pytest.raises(ApiError, match="app"):
            MapRequest.from_dict({"schema": SCHEMA_VERSION, "kind": "map-request"})


class TestMapResponse:
    def _response(self, comm_cost=1234.0, feasible=True):
        return MapResponse(
            request=MapRequest(app="pip", mapper="nmap"),
            app_name="pip",
            algorithm="nmap",
            topology=TopologySpec.parse("mesh:3x3", link_bandwidth=768.0),
            comm_cost=comm_cost,
            feasible=feasible,
            placement={"a": 0, "b": 1},
            min_bw_single=192.0,
            min_bw_split=106.7,
            stats={"swaps_tried": 12},
        )

    def test_round_trip(self):
        response = self._response()
        assert MapResponse.from_dict(json_cycle(response.to_dict())) == response

    def test_infinite_cost_round_trips_as_json(self):
        response = self._response(comm_cost=float("inf"), feasible=False)
        payload = json_cycle(response.to_dict())
        assert payload["comm_cost"] == "inf"
        assert MapResponse.from_dict(payload).comm_cost == float("inf")

    def test_missing_required_field_raises_api_error(self):
        payload = self._response().to_dict()
        del payload["placement"]
        with pytest.raises(ApiError, match="placement"):
            MapResponse.from_dict(payload)


class TestSimPayloads:
    def _sim_request(self):
        return SimRequest(
            map_request=MapRequest(app="dsp", price_bandwidth=False),
            measure_cycles=3000,
            warmup_cycles=100,
            drain_cycles=200,
            mean_burst_packets=2.0,
            sim_seed=5,
            routing="xy",
        )

    def test_request_round_trip(self):
        request = self._sim_request()
        assert SimRequest.from_dict(json_cycle(request.to_dict())) == request

    def test_request_validation(self):
        with pytest.raises(ApiError, match="routing"):
            SimRequest(map_request=MapRequest(app="dsp"), routing="warp")
        with pytest.raises(ApiError, match="measure_cycles"):
            SimRequest(map_request=MapRequest(app="dsp"), measure_cycles=0)

    def test_response_round_trip(self):
        request = self._sim_request()
        response = SimResponse(
            request=request,
            map_response=MapResponse(
                request=request.map_request,
                app_name="dsp",
                algorithm="nmap",
                topology=TopologySpec.parse("mesh:3x2", link_bandwidth=600.0),
                comm_cost=1000.0,
                feasible=True,
                placement={"x": 0},
            ),
            packets_measured=10,
            latency_mean=38.0,
            latency_mean_network=30.0,
            latency_p50=35.0,
            latency_p95=60.0,
            latency_p99=70.0,
            latency_max=80.0,
            packets_created=12,
            packets_delivered=11,
            cycles=3300,
            link_utilization={"0->1": 0.5, "1->2": 0.25},
        )
        assert SimResponse.from_dict(json_cycle(response.to_dict())) == response
        assert response.hottest_link() == ("0->1", 0.5)
