"""Unit tests for flit-level tracing."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.graphs.commodities import Commodity
from repro.routing.min_path import min_path_routing
from repro.simnoc.config import SimConfig
from repro.simnoc.network import build_network
from repro.simnoc.router import LOCAL
from repro.simnoc.simulator import Simulator
from repro.simnoc.trace import TraceRecorder


def _run_traced(mesh, max_events=100_000):
    commodities = [Commodity(0, "a", "b", 0, 8, 300.0)]
    routing = min_path_routing(mesh, commodities)
    config = SimConfig(
        warmup_cycles=100, measure_cycles=2_000, drain_cycles=500, seed=1
    )
    network = build_network(mesh, commodities, routing, config)
    trace = TraceRecorder(max_events=max_events)
    report = Simulator(network, trace=trace).run()
    return trace, report, routing


class TestTraceRecorder:
    def test_events_recorded(self, mesh3x3):
        trace, report, _routing = _run_traced(mesh3x3)
        assert trace.events
        assert not trace.truncated
        # every delivered packet ends with an ejection event
        ejections = [e for e in trace.events if e.to_key == LOCAL]
        assert len(ejections) >= report.packets_delivered

    def test_packet_journey_ordered_and_on_route(self, mesh3x3):
        trace, _report, routing = _run_traced(mesh3x3)
        packet_id = trace.events[0].packet_id
        journey = trace.packet_journey(packet_id)
        cycles = [event.cycle for event in journey]
        assert cycles == sorted(cycles)
        route_nodes = set(routing.paths[0])
        assert all(event.node in route_nodes for event in journey)

    def test_link_activity_matches_route(self, mesh3x3):
        trace, _report, routing = _run_traced(mesh3x3)
        path = routing.paths[0]
        first_link = (path[0], path[1])
        assert trace.link_activity(*first_link)
        assert not trace.link_activity(path[1], path[0])  # reverse unused

    def test_busiest_link_on_route(self, mesh3x3):
        trace, _report, routing = _run_traced(mesh3x3)
        busiest = trace.busiest_link()
        assert busiest is not None
        path = routing.paths[0]
        assert busiest in list(zip(path, path[1:]))

    def test_truncation(self, mesh3x3):
        trace, _report, _routing = _run_traced(mesh3x3, max_events=10)
        assert trace.truncated
        assert len(trace.events) == 10

    def test_render(self, mesh3x3):
        trace, _report, _routing = _run_traced(mesh3x3, max_events=50)
        text = trace.render(limit=5)
        assert "cycle" in text
        assert "p" in text
        assert "truncated" in text

    def test_invalid_cap(self):
        with pytest.raises(SimulationError):
            TraceRecorder(max_events=0)

    def test_empty_busiest(self):
        assert TraceRecorder().busiest_link() is None
