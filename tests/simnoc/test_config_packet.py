"""Unit tests for SimConfig and the packet/flit model."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simnoc.config import SimConfig
from repro.simnoc.packet import FlitKind, Packet, is_last_flit, make_flits


class TestSimConfig:
    def test_defaults_valid(self):
        config = SimConfig()
        assert config.flits_per_packet == 16  # 64 B / 4 B

    def test_flits_per_packet_rounds_up(self):
        config = SimConfig(packet_bytes=65)
        assert config.flits_per_packet == 17

    def test_mbps_conversion(self):
        config = SimConfig(clock_hz=400e6, flit_bytes=4)
        # 1600 MB/s over 1.6 GB/s of link = 1 flit/cycle
        assert config.mbps_to_flits_per_cycle(1600.0) == pytest.approx(1.0)

    def test_gbps_conversion(self):
        config = SimConfig(clock_hz=400e6, flit_bytes=4)
        assert config.gbps_link_rate(1.6) == pytest.approx(1.0)
        assert config.gbps_link_rate(0.8) == pytest.approx(0.5)

    def test_total_cycles(self):
        config = SimConfig(warmup_cycles=10, measure_cycles=20, drain_cycles=5)
        assert config.total_cycles == 35

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"clock_hz": 0},
            {"flit_bytes": 0},
            {"packet_bytes": 1, "flit_bytes": 4},
            {"buffer_depth": 1},
            {"router_delay": 0},
            {"mean_burst_packets": 0.5},
            {"warmup_cycles": -1},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(SimulationError):
            SimConfig(**kwargs)


def _packet(num_flits=4):
    return Packet(
        packet_id=1,
        commodity_index=0,
        src_node=0,
        dst_node=3,
        path=[0, 1, 3],
        num_flits=num_flits,
        created_cycle=0,
    )


class TestFlits:
    def test_make_flits_kinds(self):
        flits = make_flits(_packet(4))
        assert [f.kind for f in flits] == [
            FlitKind.HEAD,
            FlitKind.BODY,
            FlitKind.BODY,
            FlitKind.TAIL,
        ]

    def test_single_flit_packet(self):
        flits = make_flits(_packet(1))
        assert len(flits) == 1
        assert flits[0].is_head
        assert is_last_flit(flits[0])

    def test_is_last_flit(self):
        flits = make_flits(_packet(3))
        assert not is_last_flit(flits[0])
        assert is_last_flit(flits[2])

    def test_latency_requires_delivery(self):
        packet = _packet()
        with pytest.raises(SimulationError):
            _ = packet.latency
        packet.delivered_cycle = 10
        assert packet.latency == 10

    def test_network_latency(self):
        packet = _packet()
        packet.injected_cycle = 3
        packet.delivered_cycle = 13
        assert packet.network_latency == 10
        assert packet.latency == 13
