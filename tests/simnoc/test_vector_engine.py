"""Vector-engine specifics and the ``auto`` load-adaptive policy.

The heavy bit-identity guarantees live in ``tests/properties``; this file
covers the engine-layer plumbing around them: registry exposure, the
freshness and router-model guards, observable write-back, and the load
threshold ``auto`` dispatches on.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.graphs.topology import NoCTopology
from repro.simnoc import (
    SimConfig,
    Simulator,
    build_synthetic_network,
    list_engines,
)
from repro.simnoc.engines.auto import (
    AUTO_LOAD_THRESHOLD,
    AUTO_LOAD_THRESHOLD_JIT,
    offered_load_per_node,
    resolve_auto_engine,
)
from repro.simnoc.engines.jit import resolve_backend
from repro.simnoc.models import register_router_model


def _network(rate: float, **config_kwargs):
    mesh = NoCTopology.mesh(3, 3, link_bandwidth=1600.0)
    config = SimConfig(
        warmup_cycles=100, measure_cycles=800, drain_cycles=300, **config_kwargs
    )
    return build_synthetic_network(mesh, config, "uniform", rate)


class TestRegistry:
    def test_all_four_engines_registered(self):
        assert set(list_engines()) >= {"auto", "cycle", "event", "vector"}


class TestVectorEngineGuards:
    def test_requires_fresh_network(self):
        """Re-running a network that already simulated must fail loudly
        rather than silently continue from flattened-away state."""
        network = _network(0.05)
        sim = Simulator(network, engine="vector")
        sim.run()
        with pytest.raises(SimulationError, match="freshly built"):
            Simulator(network, engine="vector").run()

    def test_rejects_unknown_router_model(self):
        register_router_model("test-vector-reject", per_lane_buffers=False)(
            lambda node, input_keys, output_specs, config: (_ for _ in ()).throw(
                AssertionError("factory must not run")
            )
        )
        network = _network(0.05)
        object.__setattr__(network.config, "router_model", "test-vector-reject")
        with pytest.raises(SimulationError, match="vector engine"):
            Simulator(network, engine="vector").run()

    def test_writes_back_observable_counters(self):
        """The report builder reads NIs and output ports; the flattened run
        must leave them exactly as populated as an object-engine run."""
        fast = _network(0.1, seed=3)
        reference = _network(0.1, seed=3)
        Simulator(fast, engine="vector").run()
        Simulator(reference, engine="cycle").run()
        for node in fast.routers:
            assert (
                fast.interfaces[node].flits_injected
                == reference.interfaces[node].flits_injected
            )
            assert (
                fast.interfaces[node].flits_ejected
                == reference.interfaces[node].flits_ejected
            )
            assert [
                p.packet_id for p in fast.interfaces[node].delivered_packets
            ] == [p.packet_id for p in reference.interfaces[node].delivered_packets]
            for key, port in fast.routers[node].outputs.items():
                assert (
                    port.flits_carried
                    == reference.routers[node].outputs[key].flits_carried
                )


class TestAutoPolicy:
    def test_offered_load_sums_source_rates(self):
        network = _network(0.08)
        assert offered_load_per_node(network) == pytest.approx(0.08)

    def test_low_load_picks_event(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        network = _network(AUTO_LOAD_THRESHOLD / 3)
        assert resolve_auto_engine(network) == "event"

    def test_high_load_picks_vector(self):
        network = _network(AUTO_LOAD_THRESHOLD * 3)
        assert resolve_auto_engine(network) == "vector"

    def test_jit_backend_lowers_the_crossover(self):
        """With a compiled backend resolved, loads between the two
        thresholds flip from event to vector; truly idle networks do not."""
        backend, reason = resolve_backend()
        if backend is None:
            pytest.skip(f"no JIT backend here: {reason}")
        between = (AUTO_LOAD_THRESHOLD_JIT + AUTO_LOAD_THRESHOLD) / 2
        assert resolve_auto_engine(_network(between)) == "vector"
        assert resolve_auto_engine(_network(AUTO_LOAD_THRESHOLD_JIT / 2)) == "event"

    def test_custom_router_model_falls_back_to_event(self):
        network = _network(AUTO_LOAD_THRESHOLD * 3)
        object.__setattr__(network.config, "router_model", "wormhole-custom-x")
        assert resolve_auto_engine(network) == "event"

    def test_auto_runs_end_to_end_at_high_load(self):
        report = Simulator(_network(0.25), engine="auto").run()
        assert report.packets_delivered > 0
