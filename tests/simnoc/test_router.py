"""Unit tests for the wormhole router (direct port-level drive)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simnoc.packet import Packet, make_flits
from repro.simnoc.router import LOCAL, Router


def _router(node=0, neighbors=(1,), rate=1.0, depth=4, delay=1):
    outputs = {LOCAL: (1.0, float("inf"))}
    for n in neighbors:
        outputs[n] = (rate, 4.0)
    return Router(
        node,
        [LOCAL, *neighbors],
        outputs,
        buffer_depth=depth,
        router_delay=delay,
    )


def _packet(pid, path, flits=3):
    return Packet(
        packet_id=pid,
        commodity_index=0,
        src_node=path[0],
        dst_node=path[-1],
        path=list(path),
        num_flits=flits,
        created_cycle=0,
    )


class Collector:
    def __init__(self):
        self.events = []

    def __call__(self, from_node, to_key, flit, cycle):
        self.events.append((from_node, to_key, flit, cycle))


class TestForwarding:
    def test_head_to_tail_in_order(self):
        router = _router()
        packet = _packet(1, [0, 1])
        for flit in make_flits(packet):
            router.inputs[LOCAL].push(flit, 0)
        sink = Collector()
        total = 0
        for cycle in range(1, 10):
            total += router.step(cycle, sink)
        assert total == 3
        sequences = [event[2].sequence for event in sink.events]
        assert sequences == [0, 1, 2]

    def test_router_delay_respected(self):
        router = _router(delay=3)
        packet = _packet(1, [0, 1])
        router.inputs[LOCAL].push(make_flits(packet)[0], 0)
        sink = Collector()
        assert router.step(1, sink) == 0
        assert router.step(2, sink) == 0
        assert router.step(3, sink) == 1  # visible at cycle 0 + 3

    def test_ejection_at_destination(self):
        router = _router(node=1, neighbors=(0,))
        packet = _packet(1, [0, 1])  # node 1 is the last hop
        router.inputs[0].push(make_flits(packet)[0], 0)
        sink = Collector()
        router.step(1, sink)
        assert sink.events[0][1] == LOCAL  # ejected

    def test_slow_link_serializes(self):
        router = _router(rate=0.5)
        packet = _packet(1, [0, 1], flits=4)
        for flit in make_flits(packet):
            router.inputs[LOCAL].push(flit, 0)
        sink = Collector()
        moved_per_cycle = [router.step(cycle, sink) for cycle in range(1, 12)]
        # 0.5 flits/cycle: at most one flit every other cycle after warmup
        assert sum(moved_per_cycle) == 4
        assert max(moved_per_cycle) == 1

    def test_fast_link_multi_flit(self):
        router = _router(rate=2.0)
        packet = _packet(1, [0, 1], flits=4)
        for flit in make_flits(packet):
            router.inputs[LOCAL].push(flit, 0)
        sink = Collector()
        moved_first = router.step(1, sink)
        assert moved_first >= 2  # rate 2 moves multiple flits per cycle


class TestWormhole:
    def test_output_locked_until_tail(self):
        router = _router(neighbors=(1,))
        p1 = _packet(1, [0, 1], flits=3)
        p2 = _packet(2, [0, 1], flits=3)
        # interleave at two inputs: p1 on LOCAL, p2 from neighbor 9? use both
        router2 = _router(neighbors=(1, 2))
        del router2
        for flit in make_flits(p1):
            router.inputs[LOCAL].push(flit, 0)
        sink = Collector()
        router.step(1, sink)
        port = router.outputs[1]
        assert port.owner == LOCAL
        for cycle in range(2, 6):
            router.step(cycle, sink)
        assert port.owner is None  # released after tail

    def test_arbitration_round_robin(self):
        router = _router(node=1, neighbors=(0, 2))
        # two packets from different inputs both heading to output 2
        pa = _packet(1, [0, 1, 2], flits=1)
        pb = _packet(2, [1, 2], flits=1)
        router.inputs[0].push(make_flits(pa)[0], 0)
        router.inputs[LOCAL].push(make_flits(pb)[0], 0)
        sink = Collector()
        router.step(1, sink)
        router.step(2, sink)
        winners = [event[2].packet.packet_id for event in sink.events]
        assert sorted(winners) == [1, 2]  # both eventually served

    def test_credit_starvation_blocks(self):
        router = _router(neighbors=(1,))
        router.outputs[1].credits = 0.0
        packet = _packet(1, [0, 1], flits=2)
        for flit in make_flits(packet):
            router.inputs[LOCAL].push(flit, 0)
        sink = Collector()
        assert router.step(1, sink) == 0  # blocked on credits

    def test_credit_return_on_pop(self):
        upstream = _router(node=0, neighbors=(1,))
        downstream = _router(node=1, neighbors=(0, 2))
        downstream.inputs[0].feeder = upstream.outputs[1]
        upstream.outputs[1].credits = 1.0
        flit = make_flits(_packet(1, [0, 1], flits=1))[0]
        downstream.inputs[0].push(flit, 0)
        downstream.inputs[0].pop()
        assert upstream.outputs[1].credits == 2.0


class TestErrors:
    def test_buffer_overflow_raises(self):
        router = _router(depth=2)
        packet = _packet(1, [0, 1], flits=4)
        flits = make_flits(packet)
        router.inputs[LOCAL].push(flits[0], 0)
        router.inputs[LOCAL].push(flits[1], 0)
        with pytest.raises(SimulationError, match="overflow"):
            router.inputs[LOCAL].push(flits[2], 0)

    def test_route_missing_node(self):
        router = _router(node=5, neighbors=(1,))
        packet = _packet(1, [0, 1])
        with pytest.raises(SimulationError, match="not on its path"):
            router.next_hop_key(make_flits(packet)[0])

    def test_route_missing_output(self):
        router = _router(node=0, neighbors=(1,))
        packet = _packet(1, [0, 7])
        with pytest.raises(SimulationError, match="no output"):
            router.next_hop_key(make_flits(packet)[0])
