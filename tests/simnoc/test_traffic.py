"""Unit tests for the bursty traffic sources."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.errors import SimulationError
from repro.simnoc.config import SimConfig
from repro.simnoc.traffic import BurstyTrafficSource


def _source(rate=0.1, paths=None, burst=1.0, seed=1):
    config = SimConfig(mean_burst_packets=burst)
    return BurstyTrafficSource(
        commodity_index=0,
        src_node=0,
        dst_node=3,
        rate_flits_per_cycle=rate,
        paths=paths or [([0, 1, 3], 1.0)],
        config=config,
        rng=random.Random(seed),
    )


def _drain(source, cycles):
    counter = itertools.count(1)
    packets = []
    for cycle in range(cycles):
        packets.extend(source.packets_for_cycle(cycle, lambda: next(counter)))
    return packets


class TestRate:
    @pytest.mark.parametrize("rate", [0.05, 0.2, 0.5])
    def test_long_run_rate_close_to_target(self, rate):
        source = _source(rate=rate, burst=1.0)
        packets = _drain(source, 200_000)
        achieved = len(packets) * 16 / 200_000  # 16 flits per packet
        assert achieved == pytest.approx(rate, rel=0.05)

    def test_bursty_rate_also_matches(self):
        source = _source(rate=0.25, burst=4.0, seed=3)
        packets = _drain(source, 200_000)
        achieved = len(packets) * 16 / 200_000
        assert achieved == pytest.approx(0.25, rel=0.08)

    def test_oversubscription_rejected(self):
        with pytest.raises(SimulationError, match="oversubscribes"):
            _source(rate=1.5)

    def test_zero_rate_rejected(self):
        with pytest.raises(SimulationError):
            _source(rate=0.0)


class TestBursts:
    def test_burst_packets_back_to_back(self):
        source = _source(rate=0.2, burst=8.0, seed=2)
        counter = itertools.count(1)
        times = []
        for cycle in range(50_000):
            for _packet in source.packets_for_cycle(cycle, lambda: next(counter)):
                times.append(cycle)
        gaps = [b - a for a, b in zip(times, times[1:])]
        # within a burst, packets are exactly one serialization time apart
        assert min(gaps) == 16
        # bursts are separated by much longer gaps
        assert max(gaps) > 16

    def test_poisson_mode_no_back_to_back_requirement(self):
        source = _source(rate=0.1, burst=1.0)
        packets = _drain(source, 10_000)
        assert packets  # emits something


class TestPaths:
    def test_single_path_always_used(self):
        source = _source()
        packets = _drain(source, 20_000)
        assert all(p.path == [0, 1, 3] for p in packets)

    def test_split_paths_frequencies(self):
        source = _source(
            rate=0.5,
            paths=[([0, 1, 3], 0.75), ([0, 2, 3], 0.25)],
            seed=7,
        )
        packets = _drain(source, 100_000)
        via_1 = sum(1 for p in packets if p.path == [0, 1, 3])
        assert via_1 / len(packets) == pytest.approx(0.75, abs=0.05)

    def test_weights_renormalized(self):
        source = _source(paths=[([0, 1, 3], 2.0), ([0, 2, 3], 2.0)])
        assert sum(w for _p, w in source.paths) == pytest.approx(1.0)

    def test_bad_path_endpoints_rejected(self):
        with pytest.raises(SimulationError, match="does not join"):
            _source(paths=[([0, 1], 1.0)])

    def test_empty_paths_rejected(self):
        with pytest.raises(SimulationError, match="no paths"):
            BurstyTrafficSource(
                commodity_index=0,
                src_node=0,
                dst_node=3,
                rate_flits_per_cycle=0.1,
                paths=[],
                config=SimConfig(),
                rng=random.Random(1),
            )

    def test_zero_weights_rejected(self):
        with pytest.raises(SimulationError, match="sum to 0"):
            _source(paths=[([0, 1, 3], 0.0)])


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = _drain(_source(seed=5, burst=4.0), 30_000)
        b = _drain(_source(seed=5, burst=4.0), 30_000)
        assert [(p.created_cycle, tuple(p.path)) for p in a] == [
            (p.created_cycle, tuple(p.path)) for p in b
        ]

    def test_different_seed_differs(self):
        a = _drain(_source(seed=5, burst=4.0), 30_000)
        b = _drain(_source(seed=6, burst=4.0), 30_000)
        assert [p.created_cycle for p in a] != [p.created_cycle for p in b]
