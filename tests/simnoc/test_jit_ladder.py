"""The JIT ladder's plumbing: resolution, switches, warm-up hygiene.

Bit-identity of the kernels themselves is property-tested in
``tests/properties/test_engine_equivalence.py``; this file covers the
machinery around them — the environment switches, the per-mode resolution
cache, backend introspection for ``list-engines``, and the warm-up
contract (a second ``warmup()`` in the same process must compile nothing,
so benchmark medians and service first-request latency stay clean).
"""

from __future__ import annotations

import pytest

from repro.simnoc.engines import jit


@pytest.fixture(autouse=True)
def _clean_jit_env(monkeypatch):
    monkeypatch.delenv("REPRO_NO_JIT", raising=False)
    monkeypatch.delenv("REPRO_JIT", raising=False)


class TestResolution:
    def test_no_jit_resolves_no_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        backend, reason = jit.resolve_backend()
        assert backend is None
        assert "REPRO_NO_JIT" in reason

    def test_no_jit_wins_over_forced_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        monkeypatch.setenv("REPRO_JIT", "py")
        backend, _ = jit.resolve_backend()
        assert backend is None

    def test_py_mode_forces_the_kernel_twin(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "py")
        backend, _ = jit.resolve_backend()
        assert backend is not None
        assert backend.name == "py"

    def test_unknown_mode_resolves_no_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "fortran")
        backend, reason = jit.resolve_backend()
        assert backend is None
        assert "fortran" in reason

    def test_auto_never_raises(self):
        backend, reason = jit.resolve_backend()
        assert reason
        if backend is not None:
            assert backend.name in ("numba", "c")


class TestIntrospection:
    def test_rows_cover_every_compiled_rung(self):
        rows = jit.available_backends()
        assert [row["name"] for row in rows] == ["numba", "c"]
        for row in rows:
            assert isinstance(row["available"], bool)
            assert row["reason"]

    def test_rows_report_disabled_when_no_jit(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        for row in jit.available_backends():
            assert row["available"] is False
            assert "REPRO_NO_JIT" in row["reason"]


class TestWarmupHygiene:
    def test_second_warmup_compiles_nothing(self):
        name, reason = jit.warmup()
        if name == "none":
            pytest.skip(f"no compiled backend here: {reason}")
        before = jit.compile_events()
        name_again, _ = jit.warmup()
        assert name_again == name
        assert jit.compile_events() == before

    def test_warmup_reports_none_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        name, reason = jit.warmup()
        assert name == "none"
        assert "REPRO_NO_JIT" in reason
