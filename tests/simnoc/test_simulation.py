"""End-to-end simulator tests (network build + full runs)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.graphs.commodities import Commodity
from repro.graphs.topology import NoCTopology
from repro.routing.base import RoutingResult
from repro.routing.split import solve_min_congestion
from repro.simnoc.config import SimConfig
from repro.simnoc.network import build_network, commodity_paths
from repro.simnoc.simulator import Simulator, simulate_mapping
from repro.simnoc.stats import LatencyStats, per_commodity_means


def _commodity(index, src, dst, value):
    return Commodity(index, f"s{index}", f"d{index}", src, dst, value)


def _single_path_routing(topology, commodities):
    from repro.routing.min_path import min_path_routing

    return min_path_routing(topology, commodities)


@pytest.fixture
def small_config():
    return SimConfig(
        warmup_cycles=500,
        measure_cycles=4_000,
        drain_cycles=1_500,
        mean_burst_packets=1.0,
        seed=3,
    )


class TestBuildNetwork:
    def test_component_counts(self, mesh3x3, small_config):
        commodities = [_commodity(0, 0, 8, 100.0)]
        routing = _single_path_routing(mesh3x3, commodities)
        network = build_network(mesh3x3, commodities, routing, small_config)
        assert len(network.routers) == 9
        assert len(network.interfaces) == 9
        assert len(network.sources) == 1

    def test_link_rates_from_topology(self, small_config):
        mesh = NoCTopology.mesh(2, 2, link_bandwidth=800.0)
        commodities = [_commodity(0, 0, 3, 100.0)]
        routing = _single_path_routing(mesh, commodities)
        network = build_network(mesh, commodities, routing, small_config)
        # 800 MB/s over 4 B x 400 MHz = 0.5 flits/cycle
        assert network.link_rates[(0, 1)] == pytest.approx(0.5)

    def test_link_rate_override(self, mesh3x3, small_config):
        commodities = [_commodity(0, 0, 8, 100.0)]
        routing = _single_path_routing(mesh3x3, commodities)
        network = build_network(
            mesh3x3, commodities, routing, small_config, link_rate_flits_per_cycle=0.25
        )
        assert all(rate == 0.25 for rate in network.link_rates.values())

    def test_commodity_paths_single(self, mesh3x3):
        commodities = [_commodity(0, 0, 8, 100.0)]
        routing = _single_path_routing(mesh3x3, commodities)
        paths = commodity_paths(routing, commodities[0])
        assert len(paths) == 1
        assert paths[0][1] == 1.0

    def test_commodity_paths_split(self, mesh3x3):
        commodities = [_commodity(0, 0, 4, 900.0)]
        _lam, routing = solve_min_congestion(mesh3x3, commodities, quadrant_only=True)
        paths = commodity_paths(routing, commodities[0])
        assert len(paths) == 2
        assert sum(w for _p, w in paths) == pytest.approx(1.0)


class TestSimulationRuns:
    def test_packets_delivered_and_measured(self, mesh3x3, small_config):
        commodities = [_commodity(0, 0, 8, 200.0)]
        routing = _single_path_routing(mesh3x3, commodities)
        report = simulate_mapping(mesh3x3, commodities, routing, small_config)
        assert report.stats.count > 10
        assert report.packets_delivered <= report.packets_created

    def test_latency_at_least_physical_minimum(self, mesh3x3, small_config):
        commodities = [_commodity(0, 0, 8, 200.0)]
        routing = _single_path_routing(mesh3x3, commodities)
        report = simulate_mapping(mesh3x3, commodities, routing, small_config)
        # 4 hops + ejection: >= 5 router traversals + 16 flit serialization
        physical_floor = 5 * small_config.router_delay + 16 - 1
        assert report.stats.mean >= physical_floor

    def test_latency_monotone_in_bandwidth(self, mesh3x3):
        commodities = [_commodity(0, 0, 8, 400.0), _commodity(1, 2, 6, 400.0)]
        routing = _single_path_routing(mesh3x3, commodities)
        means = []
        for rate in (0.4, 1.0):
            config = SimConfig(
                warmup_cycles=500,
                measure_cycles=8_000,
                drain_cycles=2_000,
                mean_burst_packets=2.0,
                seed=5,
            )
            report = simulate_mapping(
                mesh3x3, commodities, routing, config, link_rate_flits_per_cycle=rate
            )
            means.append(report.stats.mean)
        assert means[0] > means[1]  # slower links -> higher latency

    def test_deterministic_given_seed(self, mesh3x3, small_config):
        commodities = [_commodity(0, 0, 8, 300.0)]
        routing = _single_path_routing(mesh3x3, commodities)
        r1 = simulate_mapping(mesh3x3, commodities, routing, small_config)
        r2 = simulate_mapping(mesh3x3, commodities, routing, small_config)
        assert r1.stats.mean == r2.stats.mean
        assert r1.packets_created == r2.packets_created

    def test_throughput_matches_offered_load(self, mesh3x3):
        config = SimConfig(
            warmup_cycles=1_000,
            measure_cycles=30_000,
            drain_cycles=3_000,
            mean_burst_packets=1.0,
            seed=2,
        )
        commodities = [_commodity(0, 0, 8, 400.0)]  # 0.25 flits/cycle
        routing = _single_path_routing(mesh3x3, commodities)
        report = simulate_mapping(mesh3x3, commodities, routing, config)
        delivered_rate = (
            report.packets_delivered * config.flits_per_packet / config.total_cycles
        )
        assert delivered_rate == pytest.approx(0.25, rel=0.1)

    def test_link_utilization_sane(self, mesh3x3, small_config):
        commodities = [_commodity(0, 0, 2, 400.0)]
        routing = _single_path_routing(mesh3x3, commodities)
        report = simulate_mapping(mesh3x3, commodities, routing, small_config)
        used = [u for u in report.link_utilization.values() if u > 0]
        assert used
        assert all(0 < u <= 1.0 + 1e-9 for u in used)

    def test_split_routing_runs(self, mesh3x3, small_config):
        commodities = [_commodity(0, 0, 4, 900.0)]
        _lam, routing = solve_min_congestion(mesh3x3, commodities, quadrant_only=True)
        report = simulate_mapping(mesh3x3, commodities, routing, small_config)
        assert report.stats.count > 10

    def test_no_measured_packets_raises(self, mesh3x3):
        config = SimConfig(
            warmup_cycles=0, measure_cycles=1, drain_cycles=0, seed=1
        )
        commodities = [_commodity(0, 0, 8, 100.0)]
        routing = _single_path_routing(mesh3x3, commodities)
        with pytest.raises(SimulationError, match="no measured packets"):
            simulate_mapping(mesh3x3, commodities, routing, config)


class TestStats:
    def test_latency_stats_fields(self):
        from repro.simnoc.packet import Packet

        packets = []
        for i, latency in enumerate([10, 20, 30, 40, 50]):
            packet = Packet(i, 0, 0, 1, [0, 1], 4, created_cycle=0)
            packet.injected_cycle = 2
            packet.delivered_cycle = latency
            packets.append(packet)
        stats = LatencyStats.from_packets(packets)
        assert stats.count == 5
        assert stats.mean == 30.0
        assert stats.p50 == 30.0
        assert stats.maximum == 50.0
        assert stats.mean_network == 28.0

    def test_unmeasured_excluded(self):
        from repro.simnoc.packet import Packet

        good = Packet(1, 0, 0, 1, [0, 1], 4, created_cycle=0)
        good.injected_cycle = 0
        good.delivered_cycle = 10
        skipped = Packet(2, 0, 0, 1, [0, 1], 4, created_cycle=0, measured=False)
        skipped.delivered_cycle = 99999
        stats = LatencyStats.from_packets([good, skipped])
        assert stats.count == 1
        assert stats.maximum == 10.0

    def test_empty_raises(self):
        with pytest.raises(SimulationError):
            LatencyStats.from_packets([])

    def test_per_commodity_means(self):
        from repro.simnoc.packet import Packet

        packets = []
        for commodity, latency in [(0, 10), (0, 20), (1, 40)]:
            packet = Packet(
                len(packets), commodity, 0, 1, [0, 1], 4, created_cycle=0
            )
            packet.injected_cycle = 0
            packet.delivered_cycle = latency
            packets.append(packet)
        means = per_commodity_means(packets)
        assert means == {0: 15.0, 1: 40.0}
