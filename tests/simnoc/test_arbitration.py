"""Router arbitration edge cases, parametrized over every engine.

These pin the microarchitectural behaviors that aggregate statistics can
mask: output-port contention resolution, full-buffer backpressure (credit
stalls must delay, never drop or corrupt), and per-flow in-order delivery
(wormhole FIFOs and per-flow VC pinning must prevent overtaking).
"""

from __future__ import annotations

import pytest

from repro.graphs.commodities import Commodity
from repro.graphs.topology import NoCTopology
from repro.routing.min_path import min_path_routing
from repro.simnoc import SimConfig, Simulator, build_network

ENGINES = ("cycle", "event", "vector")


def _commodity(index, src, dst, value):
    return Commodity(index, f"s{index}", f"d{index}", src, dst, value)


def _run(mesh, commodities, config, engine, **build_kwargs):
    routing = min_path_routing(mesh, commodities)
    network = build_network(mesh, commodities, routing, config, **build_kwargs)
    report = Simulator(network, engine=engine).run()
    return network, report


class TestOutputPortContention:
    """Two flows funneling into one output port must share it fairly."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_both_contenders_delivered(self, engine):
        # On a 1x3 chain, 0->2 and 1->2 both cross link 1->2.
        mesh = NoCTopology.mesh(3, 1, link_bandwidth=1600.0)
        commodities = [
            _commodity(0, 0, 2, 700.0),
            _commodity(1, 1, 2, 700.0),
        ]
        config = SimConfig(
            warmup_cycles=500, measure_cycles=8_000, drain_cycles=1_500, seed=9
        )
        _network, report = _run(mesh, commodities, config, engine)
        # Both flows measured, and neither starved: round-robin arbitration
        # keeps their delivered shares close at equal offered rates.
        counts = {
            flow: stats.count for flow, stats in report.per_flow.items()
        }
        assert set(counts) == {0, 1}
        assert min(counts.values()) > 0.6 * max(counts.values())

    @pytest.mark.parametrize("engine", ENGINES)
    def test_contention_raises_latency_not_loss(self, engine):
        mesh = NoCTopology.mesh(3, 1, link_bandwidth=1600.0)
        config = SimConfig(
            warmup_cycles=500, measure_cycles=8_000, drain_cycles=2_000, seed=9
        )
        solo = [_commodity(0, 0, 2, 700.0)]
        _net, solo_report = _run(mesh, solo, config, engine)
        both = [_commodity(0, 0, 2, 700.0), _commodity(1, 1, 2, 700.0)]
        _net, both_report = _run(mesh, both, config, engine)
        assert both_report.per_flow[0].mean > solo_report.per_flow[0].mean
        # Nothing was dropped: every created packet either arrived or is
        # accounted as still in flight at the horizon.
        assert both_report.packets_delivered <= both_report.packets_created


class TestFullBufferBackpressure:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_slow_drain_backpressure(self, engine):
        """A fast source into a slow link fills every buffer upstream.

        Credits must stall the worm in place (no overflow raises — push
        past capacity is a hard SimulationError) and still deliver
        everything launched before the horizon allows.
        """
        mesh = NoCTopology.mesh(3, 1, link_bandwidth=1600.0)
        commodities = [_commodity(0, 0, 2, 1200.0)]
        config = SimConfig(
            warmup_cycles=500,
            measure_cycles=6_000,
            drain_cycles=2_000,
            seed=5,
            buffer_depth=2,  # minimum legal: backpressure constantly active
            mean_burst_packets=6.0,
        )
        # Slow middle link: 0.25 flits/cycle while the source offers 0.75.
        _network, report = _run(
            mesh, commodities, config, engine, link_rate_flits_per_cycle=0.25
        )
        assert report.packets_delivered > 0
        # The backlog is real: offered load exceeds drain rate, so latency
        # far exceeds the uncongested floor.
        assert report.stats.mean > 100

    @pytest.mark.parametrize("engine", ENGINES)
    def test_backpressured_run_is_engine_exact(self, engine):
        """Same scenario, compared against the reference engine."""
        mesh = NoCTopology.mesh(3, 1, link_bandwidth=1600.0)
        commodities = [_commodity(0, 0, 2, 1200.0)]
        config = SimConfig(
            warmup_cycles=500,
            measure_cycles=6_000,
            drain_cycles=2_000,
            seed=5,
            buffer_depth=2,
            mean_burst_packets=6.0,
        )
        _n1, fast = _run(
            mesh, commodities, config, engine, link_rate_flits_per_cycle=0.25
        )
        _n2, reference = _run(
            mesh, commodities, config, "cycle", link_rate_flits_per_cycle=0.25
        )
        assert fast.stats == reference.stats
        assert fast.per_flow == reference.per_flow


class TestInOrderDeliveryPerFlow:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("num_vcs", [1, 2])
    def test_single_path_flows_deliver_in_creation_order(self, engine, num_vcs):
        """Per flow, delivery order equals creation order.

        Holds for the plain wormhole router (one FIFO per link) and for the
        VC router because the NI pins each flow to one lane — packets of a
        flow can never overtake on another lane.
        """
        mesh = NoCTopology.mesh(3, 3, link_bandwidth=1000.0)
        commodities = [
            _commodity(0, 0, 8, 500.0),
            _commodity(1, 2, 6, 500.0),
            _commodity(2, 1, 7, 300.0),
        ]
        config = SimConfig(
            warmup_cycles=300,
            measure_cycles=5_000,
            drain_cycles=1_500,
            seed=21,
            mean_burst_packets=3.0,
            num_vcs=num_vcs,
        )
        routing = min_path_routing(mesh, commodities)
        network = build_network(mesh, commodities, routing, config)
        Simulator(network, engine=engine).run()
        delivered = [
            packet
            for ni in network.interfaces.values()
            for packet in ni.delivered_packets
        ]
        by_flow: dict[int, list] = {}
        for packet in delivered:
            by_flow.setdefault(packet.commodity_index, []).append(packet)
        assert by_flow, "no deliveries recorded"
        for flow_packets in by_flow.values():
            flow_packets.sort(key=lambda p: p.delivered_cycle)
            created_order = [p.created_cycle for p in flow_packets]
            assert created_order == sorted(created_order)
            ids = [p.packet_id for p in flow_packets]
            assert ids == sorted(ids)
