"""Unit tests for the jitter/latency-variance statistics."""

from __future__ import annotations

import pytest

from repro.simnoc.packet import Packet
from repro.simnoc.stats import per_commodity_jitter, per_commodity_latency_std


def _delivered(commodity, delivered_cycle, created=0):
    packet = Packet(
        packet_id=delivered_cycle,
        commodity_index=commodity,
        src_node=0,
        dst_node=1,
        path=[0, 1],
        num_flits=4,
        created_cycle=created,
    )
    packet.injected_cycle = created
    packet.delivered_cycle = delivered_cycle
    return packet


class TestJitter:
    def test_regular_deliveries_zero_jitter(self):
        packets = [_delivered(0, t) for t in (10, 20, 30, 40)]
        assert per_commodity_jitter(packets)[0] == 0.0

    def test_irregular_deliveries_positive_jitter(self):
        packets = [_delivered(0, t) for t in (10, 12, 40, 41)]
        assert per_commodity_jitter(packets)[0] > 0.0

    def test_commodities_independent(self):
        packets = [_delivered(0, t) for t in (10, 20, 30)]
        packets += [_delivered(1, t) for t in (5, 6, 50)]
        jitter = per_commodity_jitter(packets)
        assert jitter[0] == 0.0
        assert jitter[1] > 0.0

    def test_single_packet_zero(self):
        assert per_commodity_jitter([_delivered(0, 10)])[0] == 0.0

    def test_unmeasured_excluded(self):
        regular = [_delivered(0, t) for t in (10, 20, 30)]
        straggler = _delivered(0, 500)
        straggler.measured = False
        assert per_commodity_jitter(regular + [straggler])[0] == 0.0

    def test_order_insensitive(self):
        forward = [_delivered(0, t) for t in (10, 25, 30)]
        backward = list(reversed(forward))
        assert per_commodity_jitter(forward) == per_commodity_jitter(backward)


class TestLatencyStd:
    def test_constant_latency_zero_std(self):
        packets = [_delivered(0, t + 7, created=t) for t in (0, 10, 20)]
        assert per_commodity_latency_std(packets)[0] == 0.0

    def test_mixed_path_lengths_positive_std(self):
        packets = [
            _delivered(0, 7, created=0),
            _delivered(0, 31, created=10),  # latency 21 (longer path)
            _delivered(0, 27, created=20),  # latency 7
        ]
        assert per_commodity_latency_std(packets)[0] > 0.0


class TestEndToEnd:
    def test_report_contains_jitter(self, mesh3x3):
        from repro.graphs.commodities import Commodity
        from repro.routing.min_path import min_path_routing
        from repro.simnoc import SimConfig, simulate_mapping

        commodities = [Commodity(0, "a", "b", 0, 8, 300.0)]
        routing = min_path_routing(mesh3x3, commodities)
        config = SimConfig(
            warmup_cycles=500, measure_cycles=5_000, drain_cycles=1_000, seed=1
        )
        report = simulate_mapping(mesh3x3, commodities, routing, config)
        assert 0 in report.per_commodity_jitter
        assert report.per_commodity_jitter[0] >= 0.0
        assert 0 in report.per_commodity_latency_std
