"""Synthetic traffic injectors: rates, destinations, determinism, registry."""

from __future__ import annotations

import itertools

import pytest

from repro.errors import SimulationError
from repro.graphs.topology import NoCTopology
from repro.simnoc import (
    SimConfig,
    Simulator,
    build_synthetic_network,
    get_traffic_pattern,
    list_traffic_patterns,
    simulate_synthetic,
)
from repro.simnoc.synthetic import (
    OnOffSource,
    TransposeSource,
    UniformRandomSource,
    synthetic_flow_index,
)


@pytest.fixture
def mesh4x4():
    return NoCTopology.mesh(4, 4, link_bandwidth=1600.0)


def _drain_source(source, cycles):
    counter = itertools.count(1)
    packets = []
    for cycle in range(cycles):
        packets.extend(source.packets_for_cycle(cycle, lambda: next(counter)))
    return packets


class TestRegistry:
    def test_patterns_listed(self):
        patterns = list_traffic_patterns()
        assert patterns[0] == "trace"
        assert set(patterns) >= {"trace", "uniform", "transpose", "onoff"}

    def test_unknown_pattern_rejected(self):
        with pytest.raises(SimulationError, match="unknown traffic pattern"):
            get_traffic_pattern("tornado")

    def test_trace_is_not_a_synthetic_factory(self):
        with pytest.raises(SimulationError, match="unknown traffic pattern"):
            get_traffic_pattern("trace")


class TestUniform:
    def test_offered_rate_matches_configuration(self, mesh4x4):
        config = SimConfig(seed=3)
        source = UniformRandomSource(mesh4x4, 5, 0.2, config)
        packets = _drain_source(source, 40_000)
        offered = len(packets) * config.flits_per_packet / 40_000
        assert offered == pytest.approx(0.2, rel=0.1)

    def test_destinations_cover_the_mesh(self, mesh4x4):
        source = UniformRandomSource(mesh4x4, 0, 0.5, SimConfig(seed=1))
        packets = _drain_source(source, 30_000)
        destinations = {p.dst_node for p in packets}
        assert 0 not in destinations  # never self-addressed
        assert len(destinations) == mesh4x4.num_nodes - 1

    def test_flow_index_encodes_pair(self, mesh4x4):
        source = UniformRandomSource(mesh4x4, 3, 0.3, SimConfig(seed=9))
        for packet in _drain_source(source, 5_000):
            assert packet.commodity_index == synthetic_flow_index(
                mesh4x4, 3, packet.dst_node
            )

    def test_oversubscription_rejected(self, mesh4x4):
        with pytest.raises(SimulationError, match="oversubscribes"):
            UniformRandomSource(mesh4x4, 0, 1.5, SimConfig())


class TestTranspose:
    def test_fixed_partner(self, mesh4x4):
        source = TransposeSource(mesh4x4, mesh4x4.node_at(1, 3), 0.2, SimConfig())
        packets = _drain_source(source, 10_000)
        assert packets
        assert {p.dst_node for p in packets} == {mesh4x4.node_at(3, 1)}

    def test_diagonal_nodes_excluded_by_factory(self, mesh4x4):
        sources = get_traffic_pattern("transpose")(mesh4x4, SimConfig(), 0.1)
        senders = {source.src_node for source in sources}
        for node in mesh4x4.nodes:
            x, y = mesh4x4.coords(node)
            assert (node in senders) == (x != y)


class TestOnOff:
    def test_long_run_rate_restored(self, mesh4x4):
        # Mean burst 6 and rate 0.15 give ~640 cycles per on-off period, so
        # the horizon must span hundreds of periods for the mean to settle.
        config = SimConfig(seed=5, mean_burst_packets=6.0)
        source = OnOffSource(mesh4x4, 2, 0.15, config)
        packets = _drain_source(source, 300_000)
        offered = len(packets) * config.flits_per_packet / 300_000
        assert offered == pytest.approx(0.15, rel=0.1)

    def test_burstier_than_poisson(self, mesh4x4):
        """On-off arrivals cluster: inter-start gap variance beats Poisson's."""
        config = SimConfig(seed=5, mean_burst_packets=8.0)
        onoff = _drain_source(OnOffSource(mesh4x4, 2, 0.1, config), 60_000)
        poisson = _drain_source(UniformRandomSource(mesh4x4, 2, 0.1, config), 60_000)

        def gap_cv2(packets):
            starts = [p.created_cycle for p in packets]
            gaps = [b - a for a, b in zip(starts, starts[1:]) if b > a]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return var / mean**2

        assert gap_cv2(onoff) > gap_cv2(poisson)


class TestDeterminism:
    def test_same_seed_same_network_results(self, mesh4x4):
        config = SimConfig(warmup_cycles=200, measure_cycles=2_000, drain_cycles=500, seed=17)
        a = simulate_synthetic(mesh4x4, config, "uniform", 0.1)
        b = simulate_synthetic(mesh4x4, config, "uniform", 0.1)
        assert a.stats == b.stats
        assert a.per_flow == b.per_flow

    def test_different_seeds_differ(self, mesh4x4):
        base = dict(warmup_cycles=200, measure_cycles=2_000, drain_cycles=500)
        a = simulate_synthetic(mesh4x4, SimConfig(seed=1, **base), "uniform", 0.1)
        b = simulate_synthetic(mesh4x4, SimConfig(seed=2, **base), "uniform", 0.1)
        assert a.stats != b.stats

    def test_source_streams_are_per_node(self, mesh4x4):
        """A node's stream is a pure function of (seed, node) — rebuilding
        the source (in any order, on any worker) replays it exactly."""
        config = SimConfig(seed=3)
        first = [
            (p.created_cycle, p.dst_node)
            for p in _drain_source(UniformRandomSource(mesh4x4, 5, 0.2, config), 5_000)
        ]
        second = [
            (p.created_cycle, p.dst_node)
            for p in _drain_source(UniformRandomSource(mesh4x4, 5, 0.2, config), 5_000)
        ]
        assert first == second
        other_node = [
            (p.created_cycle, p.dst_node)
            for p in _drain_source(UniformRandomSource(mesh4x4, 6, 0.2, config), 5_000)
        ]
        assert first != other_node


class TestEndToEnd:
    def test_simulate_synthetic_runs_all_patterns(self, mesh4x4):
        config = SimConfig(warmup_cycles=200, measure_cycles=2_000, drain_cycles=500, seed=8)
        for pattern in ("uniform", "transpose", "onoff"):
            report = simulate_synthetic(mesh4x4, config, pattern, 0.1)
            assert report.stats.count > 0
            assert report.per_flow

    def test_sources_sorted_by_node(self, mesh4x4):
        network = build_synthetic_network(mesh4x4, SimConfig(), "uniform", 0.1)
        nodes = [source.src_node for source in network.sources]
        assert nodes == sorted(nodes)

    def test_vc_synthetic_simulation(self, mesh4x4):
        config = SimConfig(
            warmup_cycles=200, measure_cycles=2_000, drain_cycles=500,
            seed=8, num_vcs=2,
        )
        report = simulate_synthetic(mesh4x4, config, "uniform", 0.1, engine="event")
        assert report.stats.count > 0
