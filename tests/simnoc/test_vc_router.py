"""Unit tests for the virtual-channel wormhole router (direct port drive)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simnoc.config import SimConfig
from repro.simnoc.models import get_router_model, list_router_models
from repro.simnoc.packet import Packet, make_flits
from repro.simnoc.router import LOCAL
from repro.simnoc.vc_router import VCRouter


def _router(node=0, neighbors=(1,), rate=1.0, num_vcs=2, depth=4, delay=1):
    outputs = {LOCAL: (1.0, float("inf"))}
    for n in neighbors:
        outputs[n] = (rate, 4.0)
    return VCRouter(
        node,
        [LOCAL, *neighbors],
        outputs,
        num_vcs=num_vcs,
        vc_buffer_depth=depth,
        router_delay=delay,
    )


def _packet(pid, path, flits=3, vc=0):
    packet = Packet(
        packet_id=pid,
        commodity_index=0,
        src_node=path[0],
        dst_node=path[-1],
        path=list(path),
        num_flits=flits,
        created_cycle=0,
    )
    packet.vc = vc
    return packet


class Collector:
    def __init__(self):
        self.events = []

    def __call__(self, from_node, to_key, flit, cycle):
        self.events.append((from_node, to_key, flit, cycle))


class TestLaneIsolation:
    def test_worms_interleave_across_lanes(self):
        """Two worms on different VCs share one physical link flit by flit."""
        router = _router(node=1, neighbors=(0, 2))
        pa = _packet(1, [1, 2], flits=4, vc=0)
        pb = _packet(2, [0, 1, 2], flits=4, vc=1)
        for flit in make_flits(pa):
            router.inputs[LOCAL].push(flit, 0)
        for flit in make_flits(pb):
            router.inputs[0].push(flit, 0)
        sink = Collector()
        for cycle in range(1, 12):
            router.step(cycle, sink)
        assert len(sink.events) == 8
        # With a 1 flit/cycle link and both lanes allocated, the round-robin
        # interleaves the two packets rather than serializing worm-by-worm.
        first_eight = [event[2].packet.packet_id for event in sink.events]
        assert first_eight[:4] != [1, 1, 1, 1]
        assert set(first_eight) == {1, 2}

    def test_blocked_lane_does_not_stall_other_lane(self):
        """Zero credits on VC0 must leave VC1 traffic flowing."""
        router = _router(node=1, neighbors=(0, 2))
        port = router.outputs[2]
        port.vc_credits[0] = 0.0  # downstream VC0 buffer full
        pa = _packet(1, [1, 2], flits=3, vc=0)
        pb = _packet(2, [1, 2], flits=3, vc=1)
        for flit in make_flits(pa):
            router.inputs[LOCAL].push(flit, 0)
        for flit in make_flits(pb):
            router.inputs[LOCAL].push(flit, 0)
        sink = Collector()
        for cycle in range(1, 10):
            router.step(cycle, sink)
        moved_ids = {event[2].packet.packet_id for event in sink.events}
        assert moved_ids == {2}  # VC1's worm got through, VC0's is parked
        assert port.vc_owner[0] == LOCAL  # still allocated, waiting on credit

    def test_per_lane_buffer_overflow_raises(self):
        router = _router(depth=2)
        packet = _packet(1, [0, 1], flits=4, vc=1)
        flits = make_flits(packet)
        router.inputs[LOCAL].push(flits[0], 0)
        router.inputs[LOCAL].push(flits[1], 0)
        with pytest.raises(SimulationError, match="overflow"):
            router.inputs[LOCAL].push(flits[2], 0)

    def test_lanes_have_independent_capacity(self):
        router = _router(depth=2)
        a = make_flits(_packet(1, [0, 1], flits=2, vc=0))
        b = make_flits(_packet(2, [0, 1], flits=2, vc=1))
        for flit in a:
            router.inputs[LOCAL].push(flit, 0)
        for flit in b:  # would overflow a shared FIFO of depth 2
            router.inputs[LOCAL].push(flit, 0)
        assert router.inputs[LOCAL].occupancy == 4


class TestCreditFlow:
    def test_pop_returns_credit_to_feeder_lane(self):
        upstream = _router(node=0, neighbors=(1,))
        downstream = _router(node=1, neighbors=(0, 2))
        downstream.inputs[0].feeder = upstream.outputs[1]
        upstream.outputs[1].vc_credits[1] = 1.0
        flit = make_flits(_packet(1, [0, 1], flits=1, vc=1))[0]
        downstream.inputs[0].push(flit, 0)
        downstream.inputs[0].pop(1)
        assert upstream.outputs[1].vc_credits[1] == 2.0

    def test_awaits_credit_tracks_lane_owners(self):
        router = _router(neighbors=(1,))
        assert not router.awaits_credit(1)
        packet = _packet(1, [0, 1], flits=3, vc=0)
        for flit in make_flits(packet):
            router.inputs[LOCAL].push(flit, 0)
        router.step(1, Collector())
        assert router.awaits_credit(1)


class TestEngineContract:
    def test_idle_and_buffered_flits(self):
        router = _router()
        assert router.is_idle()
        assert router.buffered_flits() == 0
        router.inputs[LOCAL].push(make_flits(_packet(1, [0, 1], flits=1))[0], 0)
        assert not router.is_idle()
        assert router.buffered_flits() == 1

    def test_next_action_cycle_reports_visibility(self):
        router = _router(delay=5)
        router.inputs[LOCAL].push(make_flits(_packet(1, [0, 1], flits=1))[0], 3)
        assert router.next_action_cycle(4) == 8  # enter 3 + delay 5

    def test_next_action_cycle_reports_token_readiness(self):
        router = _router(rate=0.25, delay=1)
        for flit in make_flits(_packet(1, [0, 1], flits=3)):
            router.inputs[LOCAL].push(flit, 0)
        sink = Collector()
        router.step(1, sink)  # allocates the lane; tokens may be short
        nxt = router.next_action_cycle(1)
        assert nxt is not None and nxt > 1

    def test_registry_builds_vc_router(self):
        assert "wormhole-vc" in list_router_models()
        config = SimConfig(num_vcs=3, vc_buffer_depth=5)
        factory = get_router_model(config.effective_router_model)
        router = factory(0, [LOCAL, 1], {LOCAL: (1.0, float("inf")), 1: (1.0, 5.0)}, config)
        assert isinstance(router, VCRouter)
        assert router.num_vcs == 3
        assert router.inputs[LOCAL].vc_capacity == 5

    def test_unknown_router_model_rejected(self):
        with pytest.raises(SimulationError, match="unknown router model"):
            get_router_model("crossbar-9000")

    def test_per_link_model_rejects_vcs_at_build(self):
        """Credits are sized from the model's declared buffer geometry; a
        per-link model cannot carry virtual channels."""
        from repro.graphs.topology import NoCTopology
        from repro.simnoc.network import build_fabric

        mesh = NoCTopology.mesh(2, 2, link_bandwidth=800.0)
        config = SimConfig(num_vcs=4, router_model="wormhole")
        with pytest.raises(SimulationError, match="buffers per link"):
            build_fabric(mesh, config)

    def test_vc_model_credits_match_lane_depth(self):
        """Downstream credits equal the actual per-lane FIFO capacity, even
        when vc_buffer_depth differs from the global buffer_depth."""
        from repro.graphs.topology import NoCTopology
        from repro.simnoc.network import build_fabric

        mesh = NoCTopology.mesh(2, 2, link_bandwidth=800.0)
        config = SimConfig(num_vcs=2, vc_buffer_depth=3, buffer_depth=8)
        routers, _interfaces, _rates = build_fabric(mesh, config)
        port = routers[0].outputs[1]
        assert port.vc_credits == [3.0, 3.0]
        assert routers[1].inputs[0].vc_capacity == 3
