"""Setuptools shim; all metadata lives in pyproject.toml.

Kept so `python setup.py develop` works on environments whose setuptools
predates PEP 660 editable wheels (no `wheel` package available offline).
"""
from setuptools import setup

setup()
