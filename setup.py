"""Setuptools entry point (no pyproject.toml; environments here predate
PEP 660 editable wheels, so ``python setup.py develop`` must keep working).

Runtime dependencies are declared here.  numpy backs every fast-path kernel
(distance-matrix gathers, batch swap scoring — see PERFORMANCE.md); the
floor is the oldest line whose fancy-indexing and ``bincount`` semantics the
kernels were validated against.
"""
from setuptools import find_packages, setup

setup(
    name="repro-nmap",
    version="0.1.0",
    description="Reproduction of NMAP bandwidth-constrained NoC mapping (DATE'04)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.22",
        "networkx>=2.6",
    ],
    extras_require={
        # The vector engine's compiled kernel tier (repro.simnoc.engines.jit).
        # Optional: without it the engine steps down to the C tier (system
        # cc) or the interpreted numpy loops, bit-identically.  0.57 is the
        # first numba with py3.11 support and the cache=True behavior the
        # warm-up hygiene contract relies on.
        "jit": ["numba>=0.57"],
    },
    entry_points={
        "console_scripts": [
            "nmap-noc=repro.cli:main",
        ],
    },
)
