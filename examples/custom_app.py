#!/usr/bin/env python3
"""Bring your own application: build a core graph, compare all algorithms.

Models a small software-defined-radio pipeline (a workload the paper's
intro motivates: streaming kernels with very uneven bandwidths), then runs
every mapping algorithm on it and prints a comparison table — the typical
"which mapper should I use for my SoC" exploration.  Also shows JSON
round-tripping for use with the `nmap-noc` CLI.

Run:  python examples/custom_app.py
"""

import tempfile
from pathlib import Path

from repro.graphs import CoreGraph, NoCTopology
from repro.graphs.io import load_core_graph, save_core_graph
from repro.mapping import gmap, nmap_single_path, nmap_with_splitting, pbb, pmap
from repro.metrics import min_bandwidth_min_path


def build_sdr_pipeline() -> CoreGraph:
    """A 10-core software-defined-radio receive chain."""
    graph = CoreGraph(name="sdr-rx")
    graph.add_traffic("adc", "ddc", 800.0)        # raw samples
    graph.add_traffic("ddc", "chan_fir", 400.0)   # down-converted
    graph.add_traffic("chan_fir", "agc", 200.0)
    graph.add_traffic("agc", "demod", 200.0)
    graph.add_traffic("demod", "deinterleave", 100.0)
    graph.add_traffic("deinterleave", "fec", 100.0)
    graph.add_traffic("fec", "mac_cpu", 50.0)
    graph.add_traffic("mac_cpu", "dram", 120.0)
    graph.add_traffic("dram", "mac_cpu", 120.0)
    graph.add_traffic("ctrl", "ddc", 8.0)         # tuning control
    graph.add_traffic("ctrl", "agc", 8.0)
    graph.add_traffic("mac_cpu", "ctrl", 16.0)
    return graph


def main() -> None:
    app = build_sdr_pipeline()
    mesh = NoCTopology.smallest_mesh_for(app.num_cores, link_bandwidth=600.0)
    print(f"{app.name}: {app.num_cores} cores on a "
          f"{mesh.width}x{mesh.height} mesh with 600 MB/s links\n")

    algorithms = {
        "pmap": lambda: pmap(app, mesh),
        "gmap": lambda: gmap(app, mesh),
        "pbb": lambda: pbb(app, mesh),
        "nmap": lambda: nmap_single_path(app, mesh),
        "nmap-ta": lambda: nmap_with_splitting(app, mesh),
    }
    print(f"{'algorithm':>10} {'comm cost':>10} {'feasible':>9} {'min BW':>8}")
    for name, run in algorithms.items():
        result = run()
        if result.feasible:
            bandwidth, _ = min_bandwidth_min_path(result.mapping)
            print(f"{name:>10} {result.comm_cost:>10.0f} {'yes':>9} "
                  f"{bandwidth:>7.0f}")
        else:
            print(f"{name:>10} {'-':>10} {'no':>9} {'-':>8}")

    # Persist the graph for the CLI: nmap-noc map --app sdr.json
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "sdr.json"
        save_core_graph(app, path)
        reloaded = load_core_graph(path)
        assert reloaded == app
        print(f"\nround-tripped the graph through JSON ({path.name}) — "
              f"use it with: nmap-noc map --app <file>.json")


if __name__ == "__main__":
    main()
