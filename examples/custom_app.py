#!/usr/bin/env python3
"""Bring your own application: build a core graph, compare all algorithms.

Models a small software-defined-radio pipeline (a workload the paper's
intro motivates: streaming kernels with very uneven bandwidths), ships it
to the facade as an *inline* core-graph payload, and fans every registered
mapping algorithm over it with ``run_batch`` — the typical "which mapper
should I use for my SoC" exploration, in the exact shape a mapping service
would queue it.

Run:  python examples/custom_app.py
"""

import tempfile
from pathlib import Path

from repro.api import MapRequest, TopologySpec, list_mappers, run_batch
from repro.graphs import CoreGraph
from repro.graphs.io import core_graph_to_dict, load_core_graph, save_core_graph


def build_sdr_pipeline() -> CoreGraph:
    """A 10-core software-defined-radio receive chain."""
    graph = CoreGraph(name="sdr-rx")
    graph.add_traffic("adc", "ddc", 800.0)        # raw samples
    graph.add_traffic("ddc", "chan_fir", 400.0)   # down-converted
    graph.add_traffic("chan_fir", "agc", 200.0)
    graph.add_traffic("agc", "demod", 200.0)
    graph.add_traffic("demod", "deinterleave", 100.0)
    graph.add_traffic("deinterleave", "fec", 100.0)
    graph.add_traffic("fec", "mac_cpu", 50.0)
    graph.add_traffic("mac_cpu", "dram", 120.0)
    graph.add_traffic("dram", "mac_cpu", 120.0)
    graph.add_traffic("ctrl", "ddc", 8.0)         # tuning control
    graph.add_traffic("ctrl", "agc", 8.0)
    graph.add_traffic("mac_cpu", "ctrl", 16.0)
    return graph


def main() -> None:
    app = build_sdr_pipeline()
    payload = core_graph_to_dict(app)
    mappers = list_mappers()
    print(f"{app.name}: {app.num_cores} cores, every registered mapper "
          f"({', '.join(mappers)}) on 600 MB/s links\n")

    requests = [
        MapRequest(
            app=payload,
            mapper=name,
            topology=TopologySpec(link_bandwidth=600.0),
            seed=7 if name == "annealing" else None,
        )
        for name in mappers
    ]
    responses = run_batch(requests)

    print(f"{'algorithm':>10} {'comm cost':>10} {'feasible':>9} {'min BW':>8}")
    for name, response in zip(mappers, responses):
        if response.feasible:
            print(f"{name:>10} {response.comm_cost:>10.0f} {'yes':>9} "
                  f"{response.min_bw_single:>7.0f}")
        else:
            print(f"{name:>10} {'-':>10} {'no':>9} {'-':>8}")

    # Persist the graph for the CLI: nmap-noc map --app sdr.json
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "sdr.json"
        save_core_graph(app, path)
        reloaded = load_core_graph(path)
        assert reloaded == app
        print(f"\nround-tripped the graph through JSON ({path.name}) — "
              f"use it with: nmap-noc map --app <file>.json")


if __name__ == "__main__":
    main()
