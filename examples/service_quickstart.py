#!/usr/bin/env python3
"""Quickstart: run mapping and simulation as a service.

Boots a :class:`repro.service.NocService` on a background thread (the
same server ``repro serve`` runs in the foreground), then talks to it
over real HTTP with the blocking :class:`repro.service.ServiceClient`:

1. map the paper's VOPD decoder through ``POST /v1/jobs``,
2. submit the *same* request three times concurrently and watch the
   content-addressed store execute it exactly once,
3. stream a small injection-rate sweep point by point as the slots
   complete (NDJSON over ``GET /v1/jobs/{id}/events``),
4. drain the service — accepted work finishes, nothing is dropped.

Run:  python examples/service_quickstart.py
"""

import tempfile
import threading

from repro.api import MapRequest, SimOptions, SimRequest
from repro.service import NocService, ServiceClient, ServiceConfig


def main() -> None:
    with tempfile.TemporaryDirectory() as store_root:
        service = NocService(
            ServiceConfig(store_root=store_root, executor="serial")
        )
        port = service.start()
        client = ServiceClient(f"http://127.0.0.1:{port}")
        print(f"service up on port {port}, store at {store_root}")

        # -- one-call convenience: submit + wait + typed response -------
        request = MapRequest(app="vopd", price_bandwidth=False)
        response = client.map(request)
        print(f"\nVOPD via HTTP : cost {response.comm_cost:.0f}, "
              f"feasible {response.feasible}")

        # -- the dedup contract: N identical submissions, one execution -
        executed_before = client.health()["store"]["executed"]
        tickets = []
        lock = threading.Lock()

        def submit() -> None:
            ticket = client.submit(request)
            with lock:
                tickets.append(ticket)

        threads = [threading.Thread(target=submit) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        bodies = set()
        for ticket in tickets:
            client.wait(ticket.id)
            bodies.add(client.result_raw(ticket.id))
        executed = client.health()["store"]["executed"] - executed_before
        print(f"\n3 concurrent identical submissions: executed {executed} "
              f"time(s), {len(bodies)} distinct result body")
        assert executed == 0 and len(bodies) == 1  # client.map already cached it

        # -- stream a sweep as it computes ------------------------------
        sweep = [
            SimRequest(
                map_request=request,
                measure_cycles=400,
                warmup_cycles=100,
                drain_cycles=200,
                options=SimOptions(
                    traffic="uniform", injection_rate=rate, engine="event"
                ),
            )
            for rate in (0.02, 0.05, 0.08)
        ]
        ticket = client.submit(sweep)
        print("\ninjection-rate sweep, streamed:")
        for event in client.stream(ticket.id):
            sim = event.response
            print(f"  rate {sim.request.options.injection_rate:.2f} : "
                  f"mean latency {sim.latency_mean:.1f} cycles "
                  f"({'cache' if event.cached else 'computed'})")

        service.shutdown()
        print("\nservice drained and stopped — results live on in the store")


if __name__ == "__main__":
    main()
