#!/usr/bin/env python3
"""Quickstart: map a video decoder onto a mesh NoC with NMAP.

Covers the core loop of the library in ~30 lines:

1. pick an application core graph (the paper's VOPD decoder),
2. build a mesh NoC topology,
3. run NMAP (single minimum-path routing),
4. inspect cost, placement and link bandwidth needs.

Run:  python examples/quickstart.py
"""

from repro.apps import vopd
from repro.graphs import NoCTopology
from repro.mapping import nmap_single_path
from repro.metrics import average_hop_count, min_bandwidth_min_path, min_bandwidth_split


def main() -> None:
    app = vopd()
    print(f"application : {app.name} — {app.num_cores} cores, "
          f"{app.num_flows} flows, {app.total_bandwidth():.0f} MB/s total")

    mesh = NoCTopology.smallest_mesh_for(app.num_cores, link_bandwidth=1000.0)
    print(f"topology    : {mesh.width}x{mesh.height} mesh, "
          f"{mesh.min_link_bandwidth():.0f} MB/s per link")

    result = nmap_single_path(app, mesh)
    print(f"\nNMAP communication cost : {result.comm_cost:.0f} (hops x MB/s)")
    print(f"bandwidth feasible      : {result.feasible}")
    print(f"average hop count       : {average_hop_count(result.mapping):.2f}")
    print("\nplacement (mesh grid):")
    print(result.mapping.render())

    single_bw, _ = min_bandwidth_min_path(result.mapping)
    split_bw, _ = min_bandwidth_split(result.mapping)
    print(f"\nminimum link bandwidth needed:")
    print(f"  single minimum-path routing : {single_bw:.0f} MB/s")
    print(f"  split-traffic routing       : {split_bw:.0f} MB/s "
          f"({single_bw / split_bw:.2f}x saving)")


if __name__ == "__main__":
    main()
