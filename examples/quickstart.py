#!/usr/bin/env python3
"""Quickstart: map a video decoder onto a NoC through the typed API.

Covers the core loop of the library in ~30 lines:

1. build a :class:`repro.api.MapRequest` (the paper's VOPD decoder, NMAP),
2. run it through the facade — the same front door the CLI uses,
3. inspect cost, placement and link bandwidth needs on the typed response,
4. round-trip the response through JSON (cache it, log it, serve it).

Run:  python examples/quickstart.py
"""

import json

from repro.api import MapRequest, MapResponse, TopologySpec, rebuild_mapping, run


def main() -> None:
    request = MapRequest(
        app="vopd",
        mapper="nmap",
        topology=TopologySpec.parse("mesh:4x4", link_bandwidth=1000.0),
    )
    response = run(request)

    print(f"application : {response.app_name}")
    print(f"topology    : {response.topology.describe()}, "
          f"{response.topology.link_bandwidth:.0f} MB/s per link")
    print(f"\nNMAP communication cost : {response.comm_cost:.0f} (hops x MB/s)")
    print(f"bandwidth feasible      : {response.feasible}")
    print("\nplacement (mesh grid):")
    print(rebuild_mapping(response).render())

    print("\nminimum link bandwidth needed:")
    print(f"  single minimum-path routing : {response.min_bw_single:.0f} MB/s")
    print(f"  split-traffic routing       : {response.min_bw_split:.0f} MB/s "
          f"({response.min_bw_single / response.min_bw_split:.2f}x saving)")

    # Responses serialize losslessly — what a cache, a log, or a mapping
    # service would store and replay.
    payload = json.dumps(response.to_dict())
    assert MapResponse.from_dict(json.loads(payload)) == response
    print(f"\nresponse round-trips through JSON ({len(payload)} bytes)")


if __name__ == "__main__":
    main()
