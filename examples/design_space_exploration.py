#!/usr/bin/env python3
"""Design-space exploration: mesh shape x link bandwidth for one app.

The paper's conclusion pitches NMAP for "fast design space exploration for
NoC topology selection".  This example does exactly that for the MPEG-4
decoder: sweep candidate mesh shapes and uniform link bandwidths, run NMAP
on each point, and tabulate cost / feasibility / bandwidth headroom so a
designer can pick the cheapest feasible corner.

Run:  python examples/design_space_exploration.py
"""

from repro.apps import mpeg4
from repro.graphs import NoCTopology
from repro.mapping import nmap_single_path
from repro.metrics import min_bandwidth_min_path, min_bandwidth_split


def main() -> None:
    app = mpeg4()
    print(f"exploring {app.name}: {app.num_cores} cores, "
          f"{app.total_bandwidth():.0f} MB/s total\n")

    shapes = [(4, 4), (5, 3), (7, 2), (4, 5)]
    print(f"{'mesh':>6} {'cost':>7} {'minBW(single)':>14} {'minBW(split)':>13} "
          f"{'avg hops':>9}")
    best = None
    for width, height in shapes:
        if width * height < app.num_cores:
            continue
        mesh = NoCTopology.mesh(width, height, link_bandwidth=app.total_bandwidth())
        result = nmap_single_path(app, mesh)
        single_bw, _ = min_bandwidth_min_path(result.mapping)
        split_bw, _ = min_bandwidth_split(result.mapping)
        hops = result.comm_cost / app.total_bandwidth()
        print(f"{width}x{height:>3} {result.comm_cost:>7.0f} {single_bw:>14.0f} "
              f"{split_bw:>13.0f} {hops:>9.2f}")
        if best is None or result.comm_cost < best[1]:
            best = ((width, height), result.comm_cost, split_bw)

    assert best is not None
    (bw_, bh_), cost, split_bw = best
    print(f"\nbest shape: {bw_}x{bh_} at cost {cost:.0f}; with traffic "
          f"splitting the links only need {split_bw:.0f} MB/s")

    print("\nlink-bandwidth sweep on the best shape (single-path NMAP):")
    mesh_cap = None
    for capacity in (400.0, 600.0, 800.0, 1200.0):
        mesh = NoCTopology.mesh(bw_, bh_, link_bandwidth=capacity)
        result = nmap_single_path(app, mesh)
        verdict = "feasible" if result.feasible else "INFEASIBLE"
        print(f"  {capacity:>7.0f} MB/s links: {verdict}")
        if result.feasible and mesh_cap is None:
            mesh_cap = capacity
    if mesh_cap is not None:
        print(f"\ncheapest feasible uniform capacity in the sweep: "
              f"{mesh_cap:.0f} MB/s")


if __name__ == "__main__":
    main()
