#!/usr/bin/env python3
"""Design-space exploration: mesh shape x link bandwidth for one app.

The paper's conclusion pitches NMAP for "fast design space exploration for
NoC topology selection".  This example does exactly that for the MPEG-4
decoder through the batch engine: every (shape x bandwidth) candidate is
one :class:`repro.api.MapRequest`, the whole sweep fans out over
``run_batch``, and the typed responses are tabulated so a designer can pick
the cheapest feasible corner.

Run:  python examples/design_space_exploration.py
"""

from repro.api import MapRequest, TopologySpec, run_batch
from repro.apps import mpeg4


def main() -> None:
    app = mpeg4()
    print(f"exploring {app.name}: {app.num_cores} cores, "
          f"{app.total_bandwidth():.0f} MB/s total\n")

    shapes = [(4, 4), (5, 3), (7, 2), (4, 5)]
    requests = [
        MapRequest(
            app="mpeg4",
            mapper="nmap",
            topology=TopologySpec("mesh", width, height, app.total_bandwidth()),
        )
        for width, height in shapes
        if width * height >= app.num_cores
    ]
    responses = run_batch(requests)

    print(f"{'mesh':>6} {'cost':>7} {'minBW(single)':>14} {'minBW(split)':>13} "
          f"{'avg hops':>9}")
    best = None
    for response in responses:
        shape = response.topology
        hops = response.comm_cost / app.total_bandwidth()
        print(f"{shape.width}x{shape.height:>3} {response.comm_cost:>7.0f} "
              f"{response.min_bw_single:>14.0f} {response.min_bw_split:>13.0f} "
              f"{hops:>9.2f}")
        if best is None or response.comm_cost < best.comm_cost:
            best = response

    assert best is not None
    shape = best.topology
    print(f"\nbest shape: {shape.width}x{shape.height} at cost "
          f"{best.comm_cost:.0f}; with traffic splitting the links only "
          f"need {best.min_bw_split:.0f} MB/s")

    print("\nlink-bandwidth sweep on the best shape (single-path NMAP):")
    sweep = [
        MapRequest(
            app="mpeg4",
            mapper="nmap",
            topology=TopologySpec("mesh", shape.width, shape.height, capacity),
            price_bandwidth=False,
        )
        for capacity in (400.0, 600.0, 800.0, 1200.0)
    ]
    mesh_cap = None
    for response in run_batch(sweep):
        capacity = response.topology.link_bandwidth
        verdict = "feasible" if response.feasible else "INFEASIBLE"
        print(f"  {capacity:>7.0f} MB/s links: {verdict}")
        if response.feasible and mesh_cap is None:
            mesh_cap = capacity
    if mesh_cap is not None:
        print(f"\ncheapest feasible uniform capacity in the sweep: "
              f"{mesh_cap:.0f} MB/s")


if __name__ == "__main__":
    main()
