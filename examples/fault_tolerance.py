"""Fault injection and the crash-proof batch engine, end to end.

Three demos, smoke-sized (this script is part of ``make fault-smoke``):

1. **Map around a dead router** — a :class:`FaultSpec` on the map request
   makes NMAP place VOPD's 16 cores on the 19 surviving nodes of a 5x4
   mesh whose router 5 died.
2. **Reroute around a failed link** — the same fault spec on a *sim*
   request leaves the pristine placement alone and detours its traffic
   over surviving minimal paths (deadlock-freedom re-checked).
3. **A crash cannot abort a batch** — a process-pool batch where one
   worker is made to die mid-request still returns a response for every
   slot: the victims are retried, the crasher comes back as a typed
   :class:`ErrorResponse`, and the neighbours' payloads match a clean run.
"""

from __future__ import annotations

import os

from repro.api import (
    ErrorResponse,
    FaultSpec,
    MapRequest,
    SimRequest,
    TopologySpec,
    run,
    run_batch,
)


def map_around_dead_router() -> None:
    response = run(
        MapRequest(
            app="vopd",
            mapper="nmap",
            topology=TopologySpec.parse("mesh:5x4"),
            faults=FaultSpec(failed_routers=(5,)),
            price_bandwidth=False,
        )
    )
    assert 5 not in response.placement.values()
    print(f"[1] mapped around dead router 5: cost {response.comm_cost:.0f}, "
          f"feasible={response.feasible}")


def reroute_around_failed_link() -> None:
    base = MapRequest(app="pip", mapper="nmap", price_bandwidth=False)
    pristine = run(SimRequest(map_request=base, measure_cycles=2_000))
    rerouted = run(
        SimRequest(
            map_request=base,
            faults=FaultSpec(failed_links=((3, 4),)),
            measure_cycles=2_000,
        )
    )
    print(f"[2] link 3-4 failed: latency {pristine.latency_mean:.1f} -> "
          f"{rerouted.latency_mean:.1f} cycles on the surviving paths")


def crash_proof_batch() -> None:
    good = MapRequest(app="pip", mapper="nmap", price_bandwidth=False)
    crasher = MapRequest(
        app="pip", mapper="nmap", price_bandwidth=False, tag="crash-me"
    )
    os.environ["REPRO_CRASH_TAG"] = "crash-me"  # test hook: worker os._exit
    try:
        responses = run_batch(
            [good, crasher, good], workers=2, executor="process", retries=1
        )
    finally:
        del os.environ["REPRO_CRASH_TAG"]
    kinds = [type(r).__name__ for r in responses]
    assert kinds == ["MapResponse", "ErrorResponse", "MapResponse"], kinds
    assert responses[0].to_dict() == run(good).to_dict()
    error = responses[1]
    assert isinstance(error, ErrorResponse) and error.error == "BatchError"
    print(f"[3] crashed slot isolated: {error.describe()}; "
          f"both neighbours match the clean run")


def main() -> None:
    map_around_dead_router()
    reroute_around_failed_link()
    crash_proof_batch()
    print("fault smoke OK")


if __name__ == "__main__":
    main()
