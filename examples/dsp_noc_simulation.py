#!/usr/bin/env python3
"""The paper's §7.2 case study end to end: DSP filter -> NoC -> simulation.

Reproduces the flow of Figure 5: map the 6-core DSP filter onto the 2x3
mesh, compile the NoC design (switches/NIs/links with ×pipes-style area
figures), emit the SystemC-like netlist, then simulate single-path vs
split-traffic routing across a link-bandwidth sweep — a quick look at the
Figure 5(c) curves.

Run:  python examples/dsp_noc_simulation.py
"""

from repro.api import get_mapper
from repro.apps.dsp import dsp_filter, dsp_mesh
from repro.design import compile_design, emit_netlist
from repro.graphs.commodities import build_commodities
from repro.routing.min_path import min_path_routing
from repro.routing.split import solve_min_congestion
from repro.simnoc import SimConfig, simulate_mapping


def main() -> None:
    app = dsp_filter()
    mesh = dsp_mesh(link_bandwidth=500.0)

    # NMAPTM keeps split paths at equal (minimum) hop counts — low jitter.
    # The custom 2x3 mesh comes from dsp_mesh, so this uses the registry's
    # object-level entry point rather than a serialized request.
    mapped = get_mapper("nmap-tm").run(app, mesh)
    print("DSP mapping (2x3 mesh):")
    print(mapped.mapping.render())

    commodities = build_commodities(app, mapped.mapping)
    single = min_path_routing(mesh, commodities)
    lam, split = solve_min_congestion(mesh, commodities, quadrant_only=True)
    print(f"\nmax link load: single-path {single.max_link_load():.0f} MB/s, "
          f"split {lam:.0f} MB/s")

    design = compile_design(mapped.mapping, single)
    print(f"\ncompiled design: {design.num_switches} switches, "
          f"{len(design.interfaces)} NIs, {design.num_links} links, "
          f"{design.total_area_mm2:.2f} mm2 total")
    netlist = emit_netlist(design)
    print("netlist preview (first 8 lines):")
    print("\n".join(netlist.splitlines()[:8]))

    print("\nlatency vs link bandwidth (avg cycles, bursty traffic):")
    print(f"{'GB/s':>6} {'single-path':>12} {'split':>8}")
    for gbps in (1.1, 1.4, 1.8):
        config = SimConfig(mean_burst_packets=2.0, buffer_depth=16, seed=1,
                           measure_cycles=15_000)
        rate = config.gbps_link_rate(gbps)
        minp = simulate_mapping(mesh, commodities, single, config,
                                link_rate_flits_per_cycle=rate)
        splt = simulate_mapping(mesh, commodities, split, config,
                                link_rate_flits_per_cycle=rate)
        print(f"{gbps:>6.1f} {minp.stats.mean:>12.1f} {splt.stats.mean:>8.1f}")


if __name__ == "__main__":
    main()
