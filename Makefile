PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test bench-smoke bench smoke

# What CI runs on every push: the tier-1 suite, a smoke-sized perf bench,
# and the example/CLI smoke.  The speedup floor is deliberately far below
# the real margins (3-20x; the smallest smoke kernel sits near 1.3x and
# jitters on loaded runners) — it exists to catch order-of-magnitude
# regressions, not to measure.
check: test bench-smoke smoke

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHON) benchmarks/run_bench.py --smoke --output /tmp/BENCH_smoke.json --min-speedup 0.5

# End-to-end smoke: the quickstart example plus one torus mapping through
# the CLI — proves the repro.api facade and torus routing stay wired up.
smoke:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) -m repro.cli map --app vopd --topology torus:4x4

# The full bench refreshes the committed BENCH_perf.json (run before a PR).
bench:
	$(PYTHON) benchmarks/run_bench.py
