PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test test-properties bench-smoke bench smoke fault-smoke serve-smoke chaos-smoke shard-smoke

# What CI runs on every push: the equivalence property suite first (its own
# stage, so an engine or fastpath-vs-scalar divergence fails loudly and
# early), then the tier-1 suite, a smoke-sized perf bench, and the
# example/CLI smoke.  The global --min-speedup floor is deliberately far
# below the real margins and skips documentation kernels (see UNGUARDED in
# run_bench.py); --enforce-floors applies the per-kernel FLOORS on top —
# together they catch order-of-magnitude regressions without flaking on
# loaded runners.
check: test-properties test bench-smoke smoke fault-smoke serve-smoke chaos-smoke shard-smoke

# tests/properties is excluded here only because `check` already ran it in
# its own stage; run `pytest -x -q` bare for the complete tier-1 sweep.
test:
	$(PYTHON) -m pytest -x -q --ignore=tests/properties

# The fastpath/engine equivalence contracts, isolated: these are the tests
# that prove the event engine and every numpy fast path are bit-consistent
# with the seed's reference implementations.
test-properties:
	$(PYTHON) -m pytest -q tests/properties

bench-smoke:
	$(PYTHON) benchmarks/run_bench.py --smoke --output BENCH_smoke.json --min-speedup 0.5 --enforce-floors

# End-to-end smoke: the quickstart example plus one torus mapping, one
# event-engine synthetic simulation and one auto-resolved (vector) run at
# high load through the CLI — proves the repro.api facade, torus routing
# and the engine/traffic plumbing stay wired up.
smoke:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) -m repro.cli list-engines
	$(PYTHON) -m repro.cli partition --topology mesh:16x16 --shards 4
	$(PYTHON) -m repro.cli map --app vopd --topology torus:4x4
	$(PYTHON) -m repro.cli simulate --app dsp --engine event --traffic uniform \
		--injection-rate 0.05 --vcs 2 --cycles 2000
	$(PYTHON) -m repro.cli simulate --app vopd --engine auto --traffic uniform \
		--injection-rate 0.25 --cycles 2000

# Fault-injection smoke: map and simulate through injected faults on a mesh
# and a torus (failed router, failed link, degraded link), then the
# crash-injected batch demo — a process worker dies mid-batch and every
# other slot still completes (examples/fault_tolerance.py asserts it).
fault-smoke:
	$(PYTHON) -m repro.cli map --app vopd --topology mesh:5x4 --fail-router 5
	$(PYTHON) -m repro.cli simulate --app pip --fail-link 3-4 --cycles 2000
	$(PYTHON) -m repro.cli map --app pip --topology torus:3x3 --fail-router 5
	$(PYTHON) -m repro.cli simulate --app vopd --topology torus:4x4 \
		--fail-link 5-6 --degrade-link 9-10:0.5 --cycles 2000
	$(PYTHON) examples/fault_tolerance.py

# Service smoke: a real `repro serve` subprocess (ephemeral port, on-disk
# store, process executor) driven over HTTP — the in-flight dedup contract
# (duplicate pair executes once, byte-identical bodies), warm and
# cold-restart store hits, ordered event streaming and a clean SIGTERM
# drain — plus the in-process quickstart example.
serve-smoke:
	$(PYTHON) scripts/serve_smoke.py
	$(PYTHON) examples/service_quickstart.py

# Crash-durability smoke: SIGKILL a real server mid-batch, restart it on
# the same store, and prove the write-ahead journal replays the unfinished
# jobs under their original ids with byte-identical results — then boot
# past a torn journal tail.
chaos-smoke:
	$(PYTHON) scripts/chaos_smoke.py

# Partition/sharded-engine smoke: cut a 16x16 mesh 4 ways and prove the
# four-worker sharded engine's report and flit trace are byte-identical
# to the single-process cycle engine's (scripts/shard_smoke.py asserts
# it).  Skips itself cleanly where the fork start method is unavailable.
shard-smoke:
	$(PYTHON) scripts/shard_smoke.py

# The full bench refreshes the committed BENCH_perf.json (run before a PR).
bench:
	$(PYTHON) benchmarks/run_bench.py
