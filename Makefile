PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test test-properties bench-smoke bench smoke

# What CI runs on every push: the equivalence property suite first (its own
# stage, so a cycle-vs-event or fastpath-vs-scalar divergence fails loudly
# and early), then the tier-1 suite, a smoke-sized perf bench, and the
# example/CLI smoke.  The speedup floor is deliberately far below the real
# margins (3-20x; the smallest smoke kernel sits near 1.3x and jitters on
# loaded runners) — it exists to catch order-of-magnitude regressions, not
# to measure.
check: test-properties test bench-smoke smoke

# tests/properties is excluded here only because `check` already ran it in
# its own stage; run `pytest -x -q` bare for the complete tier-1 sweep.
test:
	$(PYTHON) -m pytest -x -q --ignore=tests/properties

# The fastpath/engine equivalence contracts, isolated: these are the tests
# that prove the event engine and every numpy fast path are bit-consistent
# with the seed's reference implementations.
test-properties:
	$(PYTHON) -m pytest -q tests/properties

bench-smoke:
	$(PYTHON) benchmarks/run_bench.py --smoke --output BENCH_smoke.json --min-speedup 0.5

# End-to-end smoke: the quickstart example plus one torus mapping and one
# event-engine synthetic simulation through the CLI — proves the repro.api
# facade, torus routing and the engine/traffic plumbing stay wired up.
smoke:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) -m repro.cli map --app vopd --topology torus:4x4
	$(PYTHON) -m repro.cli simulate --app dsp --engine event --traffic uniform \
		--injection-rate 0.05 --vcs 2 --cycles 2000

# The full bench refreshes the committed BENCH_perf.json (run before a PR).
bench:
	$(PYTHON) benchmarks/run_bench.py
